"""The interval abstract domain over fixed-width two's-complement ints.

Every transfer function here over-approximates the concrete semantics of
:mod:`repro.lang.semantics` — including the silent wrap-around, the
``x / 0 == 0`` and ``x % 0 == x`` conventions and C truncation toward zero.
Soundness is load-bearing: the range-narrowed encoding emits clauses claiming
a statement's value fits the analyzed interval, so an interval that misses a
reachable concrete value would make the trace formula over-constrained.

Arithmetic is computed in unbounded math first and then pushed through
:func:`Interval.from_unbounded`, which models the wrap: a result range that
fits the width is exact, one that spans more than ``2**width`` values is TOP,
and anything else wraps both endpoints (collapsing to TOP if they cross the
sign boundary).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.lang.semantics import DEFAULT_WIDTH, wrap


def width_bounds(width: int = DEFAULT_WIDTH) -> Tuple[int, int]:
    return -(1 << (width - 1)), (1 << (width - 1)) - 1


@dataclass(frozen=True)
class Interval:
    """A (possibly empty) closed integer interval ``[lo, hi]``."""

    lo: int
    hi: int
    empty: bool = False

    # ------------------------------------------------------------- factories

    @staticmethod
    def top(width: int = DEFAULT_WIDTH) -> "Interval":
        lo, hi = width_bounds(width)
        return Interval(lo, hi)

    @staticmethod
    def bottom() -> "Interval":
        return Interval(0, 0, empty=True)

    @staticmethod
    def const(value: int, width: int = DEFAULT_WIDTH) -> "Interval":
        value = wrap(value, width)
        return Interval(value, value)

    @staticmethod
    def boolean() -> "Interval":
        return Interval(0, 1)

    @staticmethod
    def from_unbounded(lo: int, hi: int, width: int = DEFAULT_WIDTH) -> "Interval":
        """Abstract the wrap of an unbounded-math result range."""
        if lo > hi:
            return Interval.bottom()
        wlo, whi = width_bounds(width)
        if wlo <= lo and hi <= whi:
            return Interval(lo, hi)
        if hi - lo >= (1 << width):
            return Interval.top(width)
        lo_wrapped, hi_wrapped = wrap(lo, width), wrap(hi, width)
        if lo_wrapped <= hi_wrapped:
            return Interval(lo_wrapped, hi_wrapped)
        return Interval.top(width)

    # ------------------------------------------------------------- predicates

    @property
    def is_const(self) -> bool:
        return not self.empty and self.lo == self.hi

    def const_value(self) -> Optional[int]:
        return self.lo if self.is_const else None

    def contains(self, value: int) -> bool:
        return not self.empty and self.lo <= value <= self.hi

    def is_top(self, width: int = DEFAULT_WIDTH) -> bool:
        return not self.empty and (self.lo, self.hi) == width_bounds(width)

    #: Truthiness of the interval as a C condition.
    def truth(self) -> Optional[bool]:
        """True / False when provable, None when both outcomes possible."""
        if self.empty:
            return None
        if self.lo == 0 and self.hi == 0:
            return False
        if self.lo > 0 or self.hi < 0:
            return True
        return None

    # ---------------------------------------------------------------- lattice

    def join(self, other: "Interval") -> "Interval":
        if self.empty:
            return other
        if other.empty:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return Interval.bottom()
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        if lo > hi:
            return Interval.bottom()
        return Interval(lo, hi)

    def widen(self, other: "Interval", width: int = DEFAULT_WIDTH) -> "Interval":
        """Standard interval widening: jump unstable bounds to the width
        limits so loop iteration converges in O(1) rounds."""
        if self.empty:
            return other
        if other.empty:
            return self
        wlo, whi = width_bounds(width)
        lo = self.lo if other.lo >= self.lo else wlo
        hi = self.hi if other.hi <= self.hi else whi
        return Interval(lo, hi)

    # ------------------------------------------------------------- arithmetic

    def add(self, other: "Interval", width: int = DEFAULT_WIDTH) -> "Interval":
        if self.empty or other.empty:
            return Interval.bottom()
        return Interval.from_unbounded(self.lo + other.lo, self.hi + other.hi, width)

    def sub(self, other: "Interval", width: int = DEFAULT_WIDTH) -> "Interval":
        if self.empty or other.empty:
            return Interval.bottom()
        return Interval.from_unbounded(self.lo - other.hi, self.hi - other.lo, width)

    def neg(self, width: int = DEFAULT_WIDTH) -> "Interval":
        if self.empty:
            return Interval.bottom()
        return Interval.from_unbounded(-self.hi, -self.lo, width)

    def mul(self, other: "Interval", width: int = DEFAULT_WIDTH) -> "Interval":
        if self.empty or other.empty:
            return Interval.bottom()
        products = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ]
        return Interval.from_unbounded(min(products), max(products), width)

    def overflows(self, other: "Interval", op: str, width: int = DEFAULT_WIDTH) -> bool:
        """True when the *exact* result of ``self op other`` provably lies
        outside the representable range for every operand pair (the
        provable-overflow lint)."""
        if self.empty or other.empty:
            return False
        if op == "+":
            lo, hi = self.lo + other.lo, self.hi + other.hi
        elif op == "-":
            lo, hi = self.lo - other.hi, self.hi - other.lo
        elif op == "*":
            products = [
                self.lo * other.lo,
                self.lo * other.hi,
                self.hi * other.lo,
                self.hi * other.hi,
            ]
            lo, hi = min(products), max(products)
        else:
            return False
        wlo, whi = width_bounds(width)
        return lo > whi or hi < wlo

    def overflow_possible(
        self, other: "Interval", op: str, width: int = DEFAULT_WIDTH
    ) -> bool:
        """True when ``self op other`` might wrap for *some* operand pair —
        the guard that keeps backward refinement (which reasons in unbounded
        arithmetic) sound."""
        if self.empty or other.empty:
            return False
        if op == "+":
            lo, hi = self.lo + other.lo, self.hi + other.hi
        elif op == "-":
            lo, hi = self.lo - other.hi, self.hi - other.lo
        elif op == "*":
            products = [
                self.lo * other.lo,
                self.lo * other.hi,
                self.hi * other.lo,
                self.hi * other.hi,
            ]
            lo, hi = min(products), max(products)
        else:
            return True
        wlo, whi = width_bounds(width)
        return lo < wlo or hi > whi

    def div(self, other: "Interval", width: int = DEFAULT_WIDTH) -> "Interval":
        """C truncating division, with ``x / 0 == 0``."""
        if self.empty or other.empty:
            return Interval.bottom()
        result = Interval.bottom()
        if other.contains(0):
            result = result.join(Interval.const(0, width))
        for part in other._nonzero_parts():
            candidates = [
                _c_div(self.lo, part.lo),
                _c_div(self.lo, part.hi),
                _c_div(self.hi, part.lo),
                _c_div(self.hi, part.hi),
            ]
            # Truncation makes the quotient non-monotone around zero; the
            # endpoint quotients still bound it because |q| is maximized at
            # the dividend endpoints and the smallest-magnitude divisor.
            if part.contains(1):
                candidates.extend([self.lo, self.hi])
            if part.contains(-1):
                candidates.extend([-self.lo, -self.hi])
            result = result.join(
                Interval.from_unbounded(min(candidates), max(candidates), width)
            )
        return result

    def mod(self, other: "Interval", width: int = DEFAULT_WIDTH) -> "Interval":
        """C truncating remainder (sign of the dividend), ``x % 0 == x``."""
        if self.empty or other.empty:
            return Interval.bottom()
        result = Interval.bottom()
        if other.contains(0):
            result = result.join(self)  # x % 0 == x
        for part in other._nonzero_parts():
            magnitude = max(abs(part.lo), abs(part.hi)) - 1
            lo = 0 if self.lo >= 0 else max(self.lo, -magnitude)
            hi = 0 if self.hi <= 0 else min(self.hi, magnitude)
            result = result.join(Interval.from_unbounded(lo, hi, width))
        return result

    def _nonzero_parts(self) -> list["Interval"]:
        parts: list[Interval] = []
        if self.lo < 0:
            parts.append(Interval(self.lo, min(self.hi, -1)))
        if self.hi > 0:
            parts.append(Interval(max(self.lo, 1), self.hi))
        return parts

    # ------------------------------------------------------------ comparisons

    def compare(self, op: str, other: "Interval") -> "Interval":
        """Abstract a comparison: [1,1] / [0,0] when provable, else [0,1]."""
        if self.empty or other.empty:
            return Interval.bottom()
        definitely = {
            "<": (self.hi < other.lo, self.lo >= other.hi),
            "<=": (self.hi <= other.lo, self.lo > other.hi),
            ">": (self.lo > other.hi, self.hi <= other.lo),
            ">=": (self.lo >= other.hi, self.hi < other.lo),
            "==": (
                self.is_const and other.is_const and self.lo == other.lo,
                self.meet(other).empty,
            ),
            "!=": (
                self.meet(other).empty,
                self.is_const and other.is_const and self.lo == other.lo,
            ),
        }
        if op not in definitely:
            raise ValueError(f"unknown comparison {op!r}")
        is_true, is_false = definitely[op]
        if is_true:
            return Interval.const(1)
        if is_false:
            return Interval.const(0)
        return Interval.boolean()

    def refine(self, op: str, other: "Interval") -> Tuple["Interval", "Interval"]:
        """Refine both operand intervals under the assumption that the
        comparison holds; used along CFG branch edges."""
        if self.empty or other.empty:
            return Interval.bottom(), Interval.bottom()
        left, right = self, other
        if op == "<":
            left = left.meet(Interval(left.lo, right.hi - 1))
            right = right.meet(Interval(left.lo + 1, right.hi)) if not left.empty else Interval.bottom()
        elif op == "<=":
            left = left.meet(Interval(left.lo, right.hi))
            right = right.meet(Interval(left.lo, right.hi)) if not left.empty else Interval.bottom()
        elif op == ">":
            right_refined = right.meet(Interval(right.lo, left.hi - 1))
            left = left.meet(Interval(right.lo + 1, left.hi))
            right = right_refined
        elif op == ">=":
            right_refined = right.meet(Interval(right.lo, left.hi))
            left = left.meet(Interval(right.lo, left.hi))
            right = right_refined
        elif op == "==":
            both = left.meet(right)
            left = right = both
        elif op == "!=":
            left = left._trim(right)
            right = right._trim(self)
        return left, right

    def _trim(self, other: "Interval") -> "Interval":
        """Refinement for ``!=``: drop an endpoint equal to a constant."""
        if self.empty or not other.is_const:
            return self
        value = other.lo
        if self.is_const and self.lo == value:
            return Interval.bottom()
        if self.lo == value:
            return Interval(self.lo + 1, self.hi)
        if self.hi == value:
            return Interval(self.lo, self.hi - 1)
        return self

    # -------------------------------------------------------------- narrowing

    def narrowing_plan(
        self, width: int = DEFAULT_WIDTH, margin: int = 2, floor: int = 4
    ) -> Optional[Tuple[int, bool]]:
        """How to narrow a fresh bit-vector bound to a value in this range.

        Returns ``(k, signed)``: ``k`` low bits are fresh variables and the
        remaining high bits are pinned — to constant false for non-negative
        ranges (unsigned narrowing covers ``[0, 2**k - 1]``), or to a
        replicated sign bit otherwise (sign extension covers
        ``[-2**(k-1), 2**(k-1) - 1]``).  ``margin`` extra bits widen the
        representable range beyond the proven one and ``floor`` keeps at
        least that many bits free: both leave slack for MaxSAT repairs,
        whose values (the *fixed* program's values when the statement is
        relaxed) can stray beyond what the faulty program computes.  The
        main slack, though, comes from the caller narrowing against the
        variable's whole-program range, not a single write's range.
        Returns ``None`` when narrowing would not drop any bit.
        """
        if self.empty:
            return None
        if self.lo >= 0:
            k = max(1, self.hi.bit_length()) + margin
            signed = False
        else:
            magnitude = max(self.hi + 1 if self.hi >= 0 else 0, -self.lo)
            k = max(1, magnitude.bit_length() + 1) + margin
            signed = True
        k = max(k, floor)
        if k >= width:
            return None
        return k, signed

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "⊥" if self.empty else f"[{self.lo}, {self.hi}]"


def _c_div(left: int, right: int) -> int:
    quotient = abs(left) // abs(right)
    return quotient if (left >= 0) == (right >= 0) else -quotient
