"""The interprocedural analysis driver and the diagnostics engine.

:func:`analyze_program` runs the interval, constant and definite-init
domains over every function of a program to a global fixpoint:

* functions exchange information through context-insensitive
  :class:`~repro.analysis.domains.FunctionSummary` entries (the join of
  argument intervals over all call sites, and the join of returns);
* global variables live in a flow-insensitive invariant — reads see the
  invariant, writes join into it — iterated together with the summaries
  (recursion and mutual recursion converge through the same loop, with
  widening after a few rounds);
* the entry function's parameters can be pinned to concrete values
  (``entry_inputs``), which is how the concolic tracer obtains ranges that
  hold on the specific failing test it encodes.

The result carries structured :class:`~repro.lang.diagnostics.Diagnostic`
records (the lint output) and per-write-site value intervals (the narrowing
table consumed by the range-guided encoder).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Optional, Sequence, Union

from repro.analysis.domains import (
    ConstantDomain,
    DefiniteInitDomain,
    FunctionSummary,
    IntervalDomain,
    IntervalState,
    LiveLocalsDomain,
)
from repro.analysis.framework import solve
from repro.analysis.incremental import (
    AnalysisCache,
    FunctionProducts,
    RoundRecord,
    environment_matches,
    function_reads,
)
from repro.analysis.intervals import Interval
from repro.analysis.loops import LoopBound, infer_loop_bounds, lint_loops
from repro.cfg.graph import FunctionGraph, build_function_graph, build_program_graphs
from repro.lang import ast
from repro.lang.diagnostics import ERROR, WARNING, Diagnostic, has_errors
from repro.lang.semantics import DEFAULT_WIDTH

#: Summary/global-invariant fixpoint rounds before widening kicks in, and
#: the hard cap (widening makes the cap unreachable in practice).
WIDEN_ROUND = 3
MAX_ROUNDS = 12


@dataclass
class AnalysisResult:
    """Everything the consumers need from one analysis run."""

    program: ast.Program
    width: int
    diagnostics: tuple[Diagnostic, ...]
    #: Joined interval of every value written by the statement at
    #: ``(function, line)`` — the narrowing table for the concolic tracer,
    #: which only encodes statements along the executed (reached) path.
    write_intervals: dict[tuple[str, int], Interval]
    #: Flow-insensitive narrowing table for the bounded model checker.  BMC's
    #: guarded encoding evaluates a statement's rhs circuit even on paths
    #: that skip the statement, over whatever values the variables hold at
    #: the branch point — so these entries evaluate each rhs over the
    #: whole-program variable domains instead of the path-refined state, and
    #: skip any rhs containing a call (summaries only cover observed
    #: arguments, not arbitrary off-path values).
    flow_write_intervals: dict[tuple[str, int], Interval]
    #: Join of a variable's interval over all program points of a function;
    #: array-cell entries use the ``name[]`` key, globals the ``""`` function.
    variable_intervals: dict[tuple[str, str], Interval]
    summaries: dict[str, FunctionSummary]
    #: Trip-count verdict per ``(function, guard line)`` — the source of
    #: the unwind plans the BMC consumes and of the loop lints.
    loop_bounds: dict[tuple[str, int], LoopBound] = field(default_factory=dict)
    graphs: dict[str, FunctionGraph] = field(default_factory=dict)
    states: dict[str, dict[int, IntervalState]] = field(default_factory=dict)
    #: Round-trajectory cache recorded by this run (``record_cache=True``);
    #: stored in compiled artifacts to seed later incremental runs.
    cache: Optional[AnalysisCache] = None

    @property
    def has_errors(self) -> bool:
        return has_errors(self.diagnostics)

    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == ERROR)

    def write_interval(self, function: str, line: int) -> Optional[Interval]:
        return self.write_intervals.get((function, line))

    def flow_write_interval(self, function: str, line: int) -> Optional[Interval]:
        return self.flow_write_intervals.get((function, line))


def failed_result(
    program_name: str, diagnostics: Iterable[Diagnostic], width: int = DEFAULT_WIDTH
) -> AnalysisResult:
    """An :class:`AnalysisResult` for a program that did not get past the
    front end (parse or type errors)."""
    return AnalysisResult(
        program=ast.Program(name=program_name),
        width=width,
        diagnostics=tuple(sorted(diagnostics)),
        write_intervals={},
        flow_write_intervals={},
        variable_intervals={},
        summaries={},
    )


def analyze_source(
    source: str,
    name: str = "<program>",
    entry: str = "main",
    entry_inputs: Optional[Union[Mapping[str, int], Sequence[int]]] = None,
    width: int = DEFAULT_WIDTH,
    unwind: int = 16,
    unwind_planning: bool = False,
) -> AnalysisResult:
    """Parse, type-check and analyze; front-end failures come back as
    ERROR diagnostics instead of exceptions."""
    from repro.lang import check_program, parse_program
    from repro.lang.parser import ParseError
    from repro.lang.typecheck import TypeError_

    try:
        program = parse_program(source, name=name)
        check_program(program)
    except (ParseError, TypeError_) as exc:
        return failed_result(name, [exc.to_diagnostic()], width)
    return analyze_program(
        program,
        entry=entry,
        entry_inputs=entry_inputs,
        width=width,
        unwind=unwind,
        unwind_planning=unwind_planning,
    )


def analyze_program(
    program: ast.Program,
    entry: str = "main",
    entry_inputs: Optional[Union[Mapping[str, int], Sequence[int]]] = None,
    width: int = DEFAULT_WIDTH,
    record_cache: bool = False,
    base_cache: Optional[AnalysisCache] = None,
    reusable: Optional[Iterable[str]] = None,
    line_map: Optional[Mapping[int, int]] = None,
    unwind: int = 16,
    unwind_planning: bool = False,
) -> AnalysisResult:
    """Run the abstract interpretation to a whole-program fixpoint.

    ``unwind``/``unwind_planning`` describe the encoding the caller will
    run; the loop bounds themselves are unwind-independent, but the
    ``unwind-insufficient`` lint compares proven trip counts against the
    unrollings that encoding would actually perform.

    ``record_cache`` additionally captures the round trajectory (see
    :mod:`repro.analysis.incremental`) in ``result.cache``.  ``base_cache``
    plus ``reusable`` (the names hash-identical to the recording program)
    and ``line_map`` (that program's lines mapped onto this one) make the
    run *incremental*: a reusable function whose interprocedural
    environment matches the recorded round is replayed from the cache
    instead of re-solved.  A hit replays exactly what the live solve would
    produce and a mismatch falls back to the live solve, so the result is
    value-identical to a cold run either way.
    """
    reuse_names = frozenset(reusable) if reusable is not None else frozenset()
    if entry_inputs is not None:
        # Pinned-input runs (the concolic tracer) have per-test
        # trajectories; neither record nor reuse whole-program caches.
        record_cache = False
        base_cache = None
    if base_cache is not None and not base_cache.usable_for(entry, width):
        base_cache = None
    if base_cache is not None and line_map is None:
        line_map = {}

    incremental = base_cache is not None
    graphs: dict[str, FunctionGraph]
    if incremental:
        # Lazy graphs: reused functions never need their CFG built.
        graphs = {}
    else:
        graphs = build_program_graphs(program)

    def graph_of(name: str) -> FunctionGraph:
        graph = graphs.get(name)
        if graph is None:
            graph = graphs[name] = build_function_graph(program.functions[name])
        return graph

    # ---- the flow-insensitive global invariant, seeded from initializers
    global_scalars: dict[str, Interval] = {}
    global_arrays: dict[str, Interval] = {}
    array_sizes: dict[str, int] = {}
    for decl in program.globals:
        if isinstance(decl, ast.VarDecl):
            value = _const_expr_interval(decl.init, width)
            global_scalars[decl.name] = value
        else:
            array_sizes[decl.name] = decl.size
            cells = (
                Interval.const(0, width)
                if len(decl.init) < decl.size
                else Interval.bottom()
            )
            for expr in decl.init:
                cells = cells.join(_const_expr_interval(expr, width))
            global_arrays[decl.name] = cells
    # Local array sizes (names are unique enough in mini-C programs for the
    # OOB lint; a local shadowing a global array keeps the local's size).
    for function in program.functions.values():
        for stmt in _walk_statements(function.body):
            if isinstance(stmt, ast.ArrayDecl):
                array_sizes[stmt.name] = stmt.size

    if base_cache is not None and base_cache.array_sizes != array_sizes:
        # A changed function's local array declarations shift sizes other
        # functions' OOB lints observe — whole-cache invalidation is the
        # simple sound answer.
        base_cache = None

    entry_params = _entry_param_intervals(program, entry, entry_inputs, width)

    # ---- call-argument / return-summary / global-invariant fixpoint
    call_args: dict[str, dict[str, Interval]] = {
        name: {param: Interval.bottom() for param in fn.params}
        for name, fn in program.functions.items()
    }
    summaries: dict[str, FunctionSummary] = {
        name: FunctionSummary(params={param: Interval.bottom() for param in fn.params})
        for name, fn in program.functions.items()
    }
    domains: dict[str, IntervalDomain] = {}
    states: dict[str, dict[int, IntervalState]] = {}

    reads_table: dict[str, tuple[frozenset, frozenset]] = {}

    def reads_of(name: str) -> tuple[frozenset, frozenset]:
        reads = reads_table.get(name)
        if reads is None:
            reads = reads_table[name] = function_reads(program.functions[name])
        return reads

    cache = (
        AnalysisCache(entry=entry, width=width, array_sizes=dict(array_sizes))
        if record_cache
        else None
    )
    last_params: dict[str, dict[str, Interval]] = {}
    last_round: Optional[RoundRecord] = None

    for round_index in range(MAX_ROUNDS):
        domains = {}
        states = {}
        returns_now = {name: summaries[name].returns for name in summaries}
        base_round = (
            base_cache.rounds[round_index]
            if base_cache is not None and round_index < len(base_cache.rounds)
            else None
        )
        record = RoundRecord(
            returns=returns_now,
            global_scalars=dict(global_scalars),
            global_arrays=dict(global_arrays),
        )
        last_round = record
        outputs: dict[str, tuple] = {}
        for name, function in program.functions.items():
            params = _analysis_params(
                name, function, entry, entry_params, call_args[name], width
            )
            record.params[name] = params
            last_params[name] = params
            out = None
            if base_round is not None and name in reuse_names:
                out = base_round.outputs.get(name)
                if out is not None and not environment_matches(
                    name,
                    reads_of(name),
                    params,
                    returns_now,
                    global_scalars,
                    global_arrays,
                    base_round,
                ):
                    out = None
            if out is None:
                domain = IntervalDomain(
                    function,
                    params,
                    global_scalars,
                    global_arrays,
                    array_sizes,
                    summaries,
                    width,
                )
                domains[name] = domain
                states[name] = solve(graph_of(name), domain)
                out = (
                    domain.returned,
                    domain.call_arguments,
                    domain.global_scalar_writes,
                    domain.global_array_writes,
                )
            outputs[name] = out
        record.outputs = outputs
        if cache is not None:
            cache.rounds.append(record)
        changed = False
        widen = round_index >= WIDEN_ROUND
        for name, (returned, call_arguments, scalar_writes, array_writes) in outputs.items():
            summary = summaries[name]
            new_returns = _combine(summary.returns, returned, widen, width)
            if new_returns != summary.returns:
                summary.returns = new_returns
                changed = True
            for callee, arguments in call_arguments.items():
                if callee not in call_args:
                    continue
                target = call_args[callee]
                for param, interval in arguments.items():
                    old = target.get(param, Interval.bottom())
                    new = _combine(old, interval, widen, width)
                    if new != old:
                        target[param] = new
                        changed = True
            for store, writes in (
                (global_scalars, scalar_writes),
                (global_arrays, array_writes),
            ):
                for gname, interval in writes.items():
                    old = store.get(gname, Interval.bottom())
                    new = _combine(old, interval, widen, width)
                    if new != old:
                        store[gname] = new
                        changed = True
        for name, summary in summaries.items():
            summary.params = dict(call_args[name])
        if not changed:
            break
    if cache is not None:
        cache.final = last_round

    diagnostics: list[Diagnostic] = []
    write_intervals: dict[tuple[str, int], Interval] = {}
    flow_write_intervals: dict[tuple[str, int], Interval] = {}
    variable_intervals: dict[tuple[str, str], Interval] = {}
    loop_bounds: dict[tuple[str, int], LoopBound] = {}

    for gname, interval in global_scalars.items():
        variable_intervals[("", gname)] = interval
    for gname, interval in global_arrays.items():
        variable_intervals[("", f"{gname}[]")] = interval

    final_returns = {name: summaries[name].returns for name in summaries}

    for name, function in program.functions.items():
        products = None
        if (
            base_cache is not None
            and base_cache.final is not None
            and name in reuse_names
        ):
            products = base_cache.products.get(name)
            if products is not None and not environment_matches(
                name,
                reads_of(name),
                last_params[name],
                final_returns,
                global_scalars,
                global_arrays,
                base_cache.final,
            ):
                products = None
        if products is not None:
            # The recorded products are keyed by the recording program's
            # lines; remap positionally (identical bodies, shifted lines).
            products = FunctionProducts(
                write_intervals={
                    line_map.get(line, line): interval
                    for line, interval in products.write_intervals.items()
                }
                if line_map is not None
                else dict(products.write_intervals),
                flow_write_intervals={
                    line_map.get(line, line): interval
                    for line, interval in products.flow_write_intervals.items()
                }
                if line_map is not None
                else dict(products.flow_write_intervals),
                variable_intervals=products.variable_intervals,
                diagnostics=tuple(
                    replace(d, line=line_map.get(d.line, d.line))
                    for d in products.diagnostics
                )
                if line_map is not None
                else products.diagnostics,
                loop_bounds={
                    line_map.get(line, line): replace(
                        bound, line=line_map.get(line, line)
                    )
                    for line, bound in products.loop_bounds.items()
                }
                if line_map is not None
                else dict(products.loop_bounds),
            )
        else:
            domain = domains.get(name)
            function_states = states.get(name)
            if domain is None or function_states is None:
                # Reused in the final round, but the recorded products do
                # not transfer (e.g. the two runs converged at different
                # round counts): solve once more under the fixpoint
                # environment, which the last round left unchanged.
                domain = IntervalDomain(
                    function,
                    last_params.get(name, {}),
                    global_scalars,
                    global_arrays,
                    array_sizes,
                    summaries,
                    width,
                )
                function_states = solve(graph_of(name), domain)
                domains[name] = domain
                states[name] = function_states
            graph = graph_of(name)
            observed = domain.observed_intervals(function_states)
            local_writes: dict[tuple[str, int], Interval] = {}
            local_flow: dict[tuple[str, int], Interval] = {}
            _collect_write_intervals(
                name, graph, function_states, domain, observed, local_writes
            )
            _collect_flow_write_intervals(
                name, function, domain, observed, local_flow
            )
            products = FunctionProducts(
                write_intervals={line: iv for (_, line), iv in local_writes.items()},
                flow_write_intervals={line: iv for (_, line), iv in local_flow.items()},
                variable_intervals=dict(observed),
                diagnostics=tuple(
                    _lint_function(name, function, graph, function_states, domain, width)
                ),
                loop_bounds=infer_loop_bounds(name, graph, function_states, domain),
            )
        for line, bound in products.loop_bounds.items():
            loop_bounds[(name, line)] = bound
        for line, interval in products.write_intervals.items():
            write_intervals[(name, line)] = interval
        for line, interval in products.flow_write_intervals.items():
            flow_write_intervals[(name, line)] = interval
        for var, interval in products.variable_intervals.items():
            variable_intervals[(name, var)] = interval
        diagnostics.extend(products.diagnostics)
        if cache is not None:
            cache.products[name] = products
            cache.reads[name] = reads_of(name)

    # Loop lints are derived outside the cached products: the verdicts are
    # unwind-independent (and reusable across versions), while the lint
    # compares them against this caller's unwind parameters.
    diagnostics.extend(
        lint_loops(loop_bounds.values(), unwind=unwind, unwind_planning=unwind_planning)
    )

    return AnalysisResult(
        program=program,
        width=width,
        diagnostics=tuple(sorted(set(diagnostics))),
        write_intervals=write_intervals,
        flow_write_intervals=flow_write_intervals,
        variable_intervals=variable_intervals,
        summaries=summaries,
        loop_bounds=loop_bounds,
        graphs=graphs,
        states=states,
        cache=cache,
    )


# --------------------------------------------------------------- driver bits


def _combine(old: Interval, new: Interval, widen: bool, width: int) -> Interval:
    joined = old.join(new)
    if widen and joined != old:
        return old.widen(joined, width)
    return joined


def _entry_param_intervals(
    program: ast.Program,
    entry: str,
    entry_inputs: Optional[Union[Mapping[str, int], Sequence[int]]],
    width: int,
) -> dict[str, Interval]:
    function = program.functions.get(entry)
    if function is None:
        return {}
    params = {name: Interval.top(width) for name in function.params}
    if entry_inputs is None:
        return params
    if isinstance(entry_inputs, Mapping):
        items = entry_inputs.items()
    else:
        items = zip(function.params, entry_inputs)
    for name, value in items:
        if name in params:
            params[name] = Interval.const(value, width)
    return params


def _analysis_params(
    name: str,
    function: ast.Function,
    entry: str,
    entry_params: dict[str, Interval],
    observed_args: dict[str, Interval],
    width: int,
) -> dict[str, Interval]:
    if name == entry:
        params = dict(entry_params)
        # The entry can also be called recursively from within the program.
        for param, interval in observed_args.items():
            if not interval.empty:
                params[param] = params.get(param, Interval.bottom()).join(interval)
        return params
    if any(not interval.empty for interval in observed_args.values()):
        return {
            param: (Interval.top(width) if interval.empty else interval)
            for param, interval in observed_args.items()
        }
    # Never (yet) called: analyze with unconstrained parameters so the lints
    # still cover the function; its summary is unused until a call appears.
    return {param: Interval.top(width) for param in function.params}


def _const_expr_interval(expr: Optional[ast.Expr], width: int) -> Interval:
    """Interval of a global initializer (constant-folded when possible)."""
    if expr is None:
        return Interval.const(0, width)
    from repro.lang.semantics import apply_binary, apply_unary, wrap

    def fold(node: ast.Expr) -> Optional[int]:
        if isinstance(node, ast.IntLiteral):
            return wrap(node.value, width)
        if isinstance(node, ast.UnaryOp):
            operand = fold(node.operand)
            return None if operand is None else apply_unary(node.op, operand, width)
        if isinstance(node, ast.BinaryOp):
            left, right = fold(node.left), fold(node.right)
            if left is None or right is None:
                return None
            return apply_binary(node.op, left, right, width)
        return None

    value = fold(expr)
    return Interval.top(width) if value is None else Interval.const(value, width)


def _walk_statements(statements: tuple[ast.Stmt, ...]) -> Iterable[ast.Stmt]:
    for stmt in statements:
        yield stmt
        if isinstance(stmt, ast.If):
            yield from _walk_statements(stmt.then_body)
            yield from _walk_statements(stmt.else_body)
        elif isinstance(stmt, ast.While):
            yield from _walk_statements(stmt.body)


def _collect_write_intervals(
    name: str,
    graph: FunctionGraph,
    function_states: dict[int, IntervalState],
    domain: IntervalDomain,
    observed: dict[str, Interval],
    table: dict[tuple[str, int], Interval],
) -> None:
    """Fill the narrowing table: one interval per (function, write line).

    Each entry is the join of the value the statement writes and the
    written variable's range over the *whole* program.  The second part is
    the repair-slack rule: when MaxSAT relaxes the statement, the freed
    value stands in for what a fixed program would compute there, and such
    values live in the variable's domain, not in the single write's range.
    Accumulator initializations like ``int info = 0;`` (a [0, 0] write to
    an unbounded variable) therefore stay full-width, while writes to
    genuinely bounded variables — indices, characters, flags — narrow hard.
    """

    def domain_of(var: str, is_array: bool) -> Interval:
        key = f"{var}[]" if is_array else var
        if var in domain.locals:
            return observed.get(key, Interval.bottom())
        if is_array:
            return domain.global_arrays.get(var, Interval.top(domain.width))
        return domain.global_scalars.get(var, Interval.top(domain.width))

    for node in graph.nodes:
        stmt = node.stmt
        if stmt is None or node.index not in function_states:
            continue
        state = function_states[node.index]
        written: Optional[Interval] = None
        if isinstance(stmt, ast.VarDecl):
            written = (
                domain.eval(stmt.init, state)
                if stmt.init is not None
                else Interval.const(0, domain.width)
            )
            written = written.join(domain_of(stmt.name, is_array=False))
        elif isinstance(stmt, ast.Assign):
            written = domain.eval(stmt.value, state)
            written = written.join(domain_of(stmt.name, is_array=False))
        elif isinstance(stmt, ast.ArrayDecl):
            written = (
                Interval.const(0, domain.width)
                if len(stmt.init) < stmt.size
                else Interval.bottom()
            )
            for expr in stmt.init:
                written = written.join(domain.eval(expr, state))
            written = written.join(domain_of(stmt.name, is_array=True))
        elif isinstance(stmt, ast.ArrayAssign):
            # The encoder re-binds the whole array: cells not written keep
            # their old value, so the range must also cover everything
            # already in the array.
            written = domain.eval(stmt.value, state).join(
                domain._read_array(stmt.name, state)
            )
            written = written.join(domain_of(stmt.name, is_array=True))
        if written is None or written.empty:
            continue
        key = (name, stmt.line)
        table[key] = table.get(key, Interval.bottom()).join(written)


def _collect_flow_write_intervals(
    name: str,
    function: ast.Function,
    domain: IntervalDomain,
    observed: dict[str, Interval],
    table: dict[tuple[str, int], Interval],
) -> None:
    """Fill the BMC narrowing table: path-insensitive write intervals.

    The bounded model checker's guarded encoding constrains ``written ==
    rhs`` unconditionally — the mux *after* the binding discards the value
    on untaken paths, but the equality itself must stay satisfiable there,
    where the rhs reads whatever the variables hold at the branch point.
    Evaluating each rhs over a state that maps every variable to its
    whole-program domain covers those off-path values; the repair-slack
    join with the written variable's domain applies as on the traced path.
    Statements whose rhs calls a function are left full-width: function
    summaries only describe observed call arguments.
    """
    from repro.cfg.defuse import expression_calls

    domain_state = IntervalState(
        scalars={
            var: interval
            for var, interval in observed.items()
            if not var.endswith("[]")
        },
        arrays={
            var[:-2]: interval
            for var, interval in observed.items()
            if var.endswith("[]")
        },
    )

    def domain_of(var: str, is_array: bool) -> Interval:
        key = f"{var}[]" if is_array else var
        if var in domain.locals:
            return observed.get(key, Interval.bottom())
        if is_array:
            return domain.global_arrays.get(var, Interval.top(domain.width))
        return domain.global_scalars.get(var, Interval.top(domain.width))

    for stmt in _walk_statements(function.body):
        written: Optional[Interval] = None
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None and expression_calls(stmt.init):
                continue
            written = (
                domain.eval(stmt.init, domain_state)
                if stmt.init is not None
                else Interval.const(0, domain.width)
            )
            written = written.join(domain_of(stmt.name, is_array=False))
        elif isinstance(stmt, ast.Assign):
            if expression_calls(stmt.value):
                continue
            written = domain.eval(stmt.value, domain_state)
            written = written.join(domain_of(stmt.name, is_array=False))
        elif isinstance(stmt, ast.ArrayDecl):
            if any(expression_calls(expr) for expr in stmt.init):
                continue
            written = (
                Interval.const(0, domain.width)
                if len(stmt.init) < stmt.size
                else Interval.bottom()
            )
            for expr in stmt.init:
                written = written.join(domain.eval(expr, domain_state))
            written = written.join(domain_of(stmt.name, is_array=True))
        elif isinstance(stmt, ast.ArrayAssign):
            # The BMC binds only the stored value (per-cell muxes follow),
            # but a relaxed group's repair value must still cover anything
            # already in the array, so join the array's domain.
            if expression_calls(stmt.value):
                continue
            written = domain.eval(stmt.value, domain_state)
            written = written.join(domain_of(stmt.name, is_array=True))
        if written is None or written.empty:
            continue
        key = (name, stmt.line)
        table[key] = table.get(key, Interval.bottom()).join(written)


# ---------------------------------------------------------------- lint pass


def _lint_function(
    name: str,
    function: ast.Function,
    graph: FunctionGraph,
    function_states: dict[int, IntervalState],
    domain: IntervalDomain,
    width: int,
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []

    # Dead code: reachable fixpoint states never arrived.  Report only the
    # first node of each dead region (a dead node all of whose predecessors
    # are also dead is implied by the earlier report).
    for node in graph.nodes:
        if node.stmt is None or node.index in function_states:
            continue
        preds = graph.predecessors(node.index)
        if preds and not any(edge.source in function_states for edge in preds):
            continue
        diagnostics.append(
            Diagnostic(
                line=node.line,
                severity=WARNING,
                code="dead-code",
                message="statement is unreachable",
                function=name,
            )
        )

    # Value lints on every reachable statement.
    for node in graph.nodes:
        stmt = node.stmt
        if stmt is None or node.index not in function_states:
            continue
        state = function_states[node.index]
        for expr in _statement_expressions(stmt):
            _lint_expression(expr, state, domain, name, diagnostics)
        if isinstance(stmt, ast.ArrayAssign):
            _lint_index(
                stmt.name, stmt.index, stmt.line, state, domain, name, diagnostics
            )

    # Dead stores: a backward liveness pass (the forward solver over the
    # reversed CFG).  A reachable scalar store to a local whose value can
    # never be read afterwards is reported; stores whose right-hand side
    # calls a function are kept quiet — the statement is not removable even
    # though its stored value is unused.
    live_domain = LiveLocalsDomain(function)
    if live_domain.locals:
        from repro.cfg.defuse import statement_calls

        live_after = solve(graph.reversed_view(), live_domain)
        for node in graph.nodes:
            stmt = node.stmt
            if stmt is None or node.index not in function_states:
                continue
            if not (
                isinstance(stmt, ast.Assign)
                or (isinstance(stmt, ast.VarDecl) and stmt.init is not None)
            ):
                continue
            after = live_after.get(node.index)
            if (
                after is None
                or stmt.name not in live_domain.locals
                or stmt.name in after
                or statement_calls(stmt)
            ):
                continue
            diagnostics.append(
                Diagnostic(
                    line=node.line,
                    severity=WARNING,
                    code="dead-store",
                    message=f"value stored to '{stmt.name}' is never read",
                    function=name,
                )
            )

    # Uninitialized reads: a must-analysis of definitely-assigned locals.
    init_domain = DefiniteInitDomain(function)
    if init_domain.implicit_zero:
        init_states = solve(graph, init_domain)
        reported: set[tuple[int, str]] = set()
        for node in graph.nodes:
            stmt = node.stmt
            if stmt is None or node.index not in init_states:
                continue
            assigned = init_states[node.index]
            for expr in _statement_expressions(stmt):
                for read in _scalar_reads(expr):
                    if (
                        read in init_domain.implicit_zero
                        and read not in assigned
                        and (stmt.line, read) not in reported
                    ):
                        reported.add((stmt.line, read))
                        diagnostics.append(
                            Diagnostic(
                                line=stmt.line,
                                severity=WARNING,
                                code="uninitialized-read",
                                message=(
                                    f"'{read}' may be read before it is assigned"
                                    " (mini-C zero-initializes; C would not)"
                                ),
                                function=name,
                            )
                        )
    return diagnostics


def _statement_expressions(stmt: ast.Stmt) -> list[ast.Expr]:
    if isinstance(stmt, ast.VarDecl):
        return [stmt.init] if stmt.init is not None else []
    if isinstance(stmt, ast.ArrayDecl):
        return list(stmt.init)
    if isinstance(stmt, ast.Assign):
        return [stmt.value]
    if isinstance(stmt, ast.ArrayAssign):
        return [stmt.index, stmt.value]
    if isinstance(stmt, (ast.If, ast.While, ast.Assert, ast.Assume)):
        return [stmt.cond]
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.Print):
        return [stmt.value]
    if isinstance(stmt, ast.ExprStmt):
        return [stmt.expr]
    return []


def _lint_expression(
    expr: ast.Expr,
    state: IntervalState,
    domain: IntervalDomain,
    function: str,
    diagnostics: list[Diagnostic],
) -> None:
    if isinstance(expr, ast.BinaryOp):
        _lint_expression(expr.left, state, domain, function, diagnostics)
        if expr.op in ("&&", "||"):
            truth = domain.eval(expr.left, state).truth()
            short_circuits = truth is (expr.op == "||")
            if not short_circuits:
                _lint_expression(expr.right, state, domain, function, diagnostics)
            return
        _lint_expression(expr.right, state, domain, function, diagnostics)
        if expr.op in ("/", "%"):
            divisor = domain.eval(expr.right, state)
            if divisor.is_const and divisor.lo == 0:
                diagnostics.append(
                    Diagnostic(
                        line=expr.line,
                        severity=ERROR,
                        code="const-div-by-zero",
                        message=f"divisor of '{expr.op}' is always zero",
                        function=function,
                    )
                )
        elif expr.op in ("+", "-", "*"):
            left = domain.eval(expr.left, state)
            right = domain.eval(expr.right, state)
            if left.overflows(right, expr.op, domain.width):
                diagnostics.append(
                    Diagnostic(
                        line=expr.line,
                        severity=WARNING,
                        code="overflow",
                        message=(
                            f"'{expr.op}' always overflows"
                            f" {domain.width}-bit arithmetic"
                        ),
                        function=function,
                    )
                )
    elif isinstance(expr, ast.UnaryOp):
        _lint_expression(expr.operand, state, domain, function, diagnostics)
    elif isinstance(expr, ast.Conditional):
        _lint_expression(expr.cond, state, domain, function, diagnostics)
        truth = domain.eval(expr.cond, state).truth()
        if truth is not False:
            _lint_expression(expr.then, state, domain, function, diagnostics)
        if truth is not True:
            _lint_expression(expr.otherwise, state, domain, function, diagnostics)
    elif isinstance(expr, ast.Call):
        for arg in expr.args:
            _lint_expression(arg, state, domain, function, diagnostics)
    elif isinstance(expr, ast.ArrayRef):
        _lint_expression(expr.index, state, domain, function, diagnostics)
        _lint_index(
            expr.name, expr.index, expr.line, state, domain, function, diagnostics
        )


def _lint_index(
    array: str,
    index: ast.Expr,
    line: int,
    state: IntervalState,
    domain: IntervalDomain,
    function: str,
    diagnostics: list[Diagnostic],
) -> None:
    size = domain.array_sizes.get(array)
    if size is None:
        return
    interval = domain.eval(index, state)
    if interval.empty:
        return
    if interval.hi < 0 or interval.lo >= size:
        diagnostics.append(
            Diagnostic(
                line=line,
                severity=ERROR,
                code="always-OOB",
                message=(
                    f"index {interval} of '{array}[{size}]' is always"
                    " out of bounds"
                ),
                function=function,
            )
        )


def _scalar_reads(expr: ast.Expr) -> Iterable[str]:
    if isinstance(expr, ast.VarRef):
        yield expr.name
    elif isinstance(expr, ast.UnaryOp):
        yield from _scalar_reads(expr.operand)
    elif isinstance(expr, ast.BinaryOp):
        yield from _scalar_reads(expr.left)
        yield from _scalar_reads(expr.right)
    elif isinstance(expr, ast.Conditional):
        yield from _scalar_reads(expr.cond)
        yield from _scalar_reads(expr.then)
        yield from _scalar_reads(expr.otherwise)
    elif isinstance(expr, ast.Call):
        for arg in expr.args:
            yield from _scalar_reads(arg)
    elif isinstance(expr, ast.ArrayRef):
        yield from _scalar_reads(expr.index)


__all__ = [
    "AnalysisResult",
    "ConstantDomain",
    "analyze_program",
    "analyze_source",
    "failed_result",
]
