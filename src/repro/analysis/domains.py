"""The three abstract domains run by the analyzer.

* :class:`IntervalDomain` — per-variable value ranges, the workhorse.  It
  powers the range-narrowed encoding, the out-of-bounds / division-by-zero /
  overflow lints and dead-code detection (branch refinement makes provably
  untaken edges infeasible).  Function calls are resolved through
  context-insensitive summaries supplied by the interprocedural driver;
  global variables are read from a flow-insensitive global invariant.
* :class:`ConstantDomain` — a flat constant lattice per local scalar, the
  classic constant-propagation analysis.  Mostly subsumed by intervals but
  kept separate so the diagnostics engine can distinguish "provably the
  constant 0" from "an interval that happens to be [0, 0]" and future
  passes can fold proven constants without dragging in range reasoning.
* :class:`DefiniteInitDomain` — a must-analysis of definitely-assigned
  locals (join is intersection), powering the uninitialized-read lint for
  variables declared without an initializer.

All three share the mini-C scoping rule: a name is local if the function
declares it (or takes it as a parameter), global otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.intervals import Interval
from repro.cfg.defuse import function_local_names
from repro.cfg.graph import Edge, Node
from repro.lang import ast
from repro.lang.semantics import DEFAULT_WIDTH, apply_binary, apply_unary

COMPARISON_OPS = ("<", "<=", ">", ">=", "==", "!=")


@dataclass
class FunctionSummary:
    """Context-insensitive summary of one function: the join of argument
    intervals over every analyzed call site and the join of its returns."""

    params: dict[str, Interval] = field(default_factory=dict)
    returns: Interval = field(default_factory=Interval.bottom)

    def join_arguments(self, arguments: dict[str, Interval]) -> bool:
        changed = False
        for name, interval in arguments.items():
            old = self.params.get(name, Interval.bottom())
            new = old.join(interval)
            if new != old:
                self.params[name] = new
                changed = True
        return changed


# ---------------------------------------------------------------- intervals


@dataclass
class IntervalState:
    """Scalar and array-cell intervals for one program point."""

    scalars: dict[str, Interval] = field(default_factory=dict)
    arrays: dict[str, Interval] = field(default_factory=dict)

    def copy(self) -> "IntervalState":
        return IntervalState(dict(self.scalars), dict(self.arrays))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IntervalState)
            and self.scalars == other.scalars
            and self.arrays == other.arrays
        )


class IntervalDomain:
    """Interval analysis of one function body.

    The driver supplies the function's parameter intervals, the global
    invariant (scalar and array-cell intervals plus array sizes) and the
    summary table for callees.  While the worklist runs, the domain records
    the argument intervals it feeds into each call site and the values it
    stores into globals — the driver folds both back into the summaries and
    the invariant and re-runs until everything stabilizes.
    """

    def __init__(
        self,
        function: ast.Function,
        params: dict[str, Interval],
        global_scalars: dict[str, Interval],
        global_arrays: dict[str, Interval],
        array_sizes: dict[str, int],
        summaries: dict[str, FunctionSummary],
        width: int = DEFAULT_WIDTH,
    ) -> None:
        self.function = function
        self.params = params
        self.global_scalars = global_scalars
        self.global_arrays = global_arrays
        self.array_sizes = array_sizes
        self.summaries = summaries
        self.width = width
        self.locals = function_local_names(function)
        #: Joined argument intervals per callee, filled during the solve.
        self.call_arguments: dict[str, dict[str, Interval]] = {}
        #: Joined values stored into global scalars / array cells.
        self.global_scalar_writes: dict[str, Interval] = {}
        self.global_array_writes: dict[str, Interval] = {}
        #: Joined return-value interval.
        self.returned = Interval.bottom()

    # ------------------------------------------------------- domain protocol

    def entry_state(self) -> IntervalState:
        state = IntervalState()
        for name in self.function.params:
            state.scalars[name] = self.params.get(name, Interval.top(self.width))
        return state

    def join(self, a: IntervalState, b: IntervalState) -> IntervalState:
        return self._merge(a, b, Interval.join)

    def widen(self, a: IntervalState, b: IntervalState) -> IntervalState:
        return self._merge(a, b, lambda x, y: x.widen(y, self.width))

    def _merge(self, a: IntervalState, b: IntervalState, combine) -> IntervalState:
        out = IntervalState()
        for name in set(a.scalars) | set(b.scalars):
            in_a, in_b = name in a.scalars, name in b.scalars
            if in_a and in_b:
                out.scalars[name] = combine(a.scalars[name], b.scalars[name])
            # A variable tracked on only one side was declared inside one
            # branch; it is dead after the join in well-scoped programs, and
            # dropping it is the sound choice for the ones that are not.
        for name in set(a.arrays) | set(b.arrays):
            if name in a.arrays and name in b.arrays:
                out.arrays[name] = combine(a.arrays[name], b.arrays[name])
        return out

    def equal(self, a: IntervalState, b: IntervalState) -> bool:
        return a == b

    def transfer(self, node: Node, state: IntervalState) -> Optional[IntervalState]:
        stmt = node.stmt
        if stmt is None:
            return state
        state = state.copy()
        if isinstance(stmt, ast.VarDecl):
            value = self.eval(stmt.init, state) if stmt.init is not None else Interval.const(0, self.width)
            self._write_scalar(stmt.name, value, state, declare=True)
        elif isinstance(stmt, ast.ArrayDecl):
            cells = Interval.const(0, self.width) if len(stmt.init) < stmt.size else Interval.bottom()
            for expr in stmt.init:
                cells = cells.join(self.eval(expr, state))
            state.arrays[stmt.name] = cells
        elif isinstance(stmt, ast.Assign):
            self._write_scalar(stmt.name, self.eval(stmt.value, state), state)
        elif isinstance(stmt, ast.ArrayAssign):
            self.eval(stmt.index, state)
            value = self.eval(stmt.value, state)
            self._write_array(stmt.name, value, state)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returned = self.returned.join(self.eval(stmt.value, state))
        elif isinstance(stmt, ast.Assume):
            state = self.refine_condition(stmt.cond, True, state)
            if state is None:
                return None
        elif isinstance(stmt, (ast.Assert, ast.If, ast.While)):
            # Conditions are evaluated for their call side effects only; the
            # refinement happens along the outgoing edges.  Assertions do
            # not refine: the encoder explores executions past a failing
            # assertion, so assuming the condition would be unsound there.
            self.eval(stmt.cond, state)
        elif isinstance(stmt, ast.ExprStmt):
            self.eval(stmt.expr, state)
        elif isinstance(stmt, ast.Print):
            self.eval(stmt.value, state)
        return state

    def refine_edge(self, edge: Edge, state: IntervalState) -> Optional[IntervalState]:
        if edge.cond is None:
            return state
        return self.refine_condition(edge.cond, edge.taken, state.copy())

    # ------------------------------------------------------------ evaluation

    def eval(self, expr: ast.Expr, state: IntervalState) -> Interval:
        """Abstract value of an expression (recording call arguments)."""
        width = self.width
        if isinstance(expr, ast.IntLiteral):
            return Interval.const(expr.value, width)
        if isinstance(expr, ast.VarRef):
            return self._read_scalar(expr.name, state)
        if isinstance(expr, ast.ArrayRef):
            index = self.eval(expr.index, state)
            cells = self._read_array(expr.name, state)
            size = self._array_size(expr.name)
            result = cells
            if size is None or index.empty or index.lo < 0 or index.hi >= size:
                result = result.join(Interval.const(0, width))  # OOB reads yield 0
            return result
        if isinstance(expr, ast.UnaryOp):
            operand = self.eval(expr.operand, state)
            if expr.op == "-":
                return operand.neg(width)
            if expr.op == "!":
                truth = operand.truth()
                if truth is None:
                    return Interval.boolean()
                return Interval.const(0 if truth else 1, width)
            return Interval.top(width)
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr, state)
        if isinstance(expr, ast.Conditional):
            cond = self.eval(expr.cond, state)
            truth = cond.truth()
            if truth is True:
                return self.eval(expr.then, state)
            if truth is False:
                return self.eval(expr.otherwise, state)
            return self.eval(expr.then, state).join(self.eval(expr.otherwise, state))
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, state)
        return Interval.top(width)

    def _eval_binary(self, expr: ast.BinaryOp, state: IntervalState) -> Interval:
        width = self.width
        left = self.eval(expr.left, state)
        right_needed = True
        if expr.op in ("&&", "||"):
            truth = left.truth()
            if expr.op == "&&" and truth is False:
                right_needed = False
                result = Interval.const(0, width)
            elif expr.op == "||" and truth is True:
                right_needed = False
                result = Interval.const(1, width)
        if not right_needed:
            return result
        right = self.eval(expr.right, state)
        if left.is_const and right.is_const:
            return Interval.const(
                apply_binary(expr.op, left.lo, right.lo, width), width
            )
        if expr.op == "+":
            return left.add(right, width)
        if expr.op == "-":
            return left.sub(right, width)
        if expr.op == "*":
            return left.mul(right, width)
        if expr.op == "/":
            return left.div(right, width)
        if expr.op == "%":
            return left.mod(right, width)
        if expr.op in COMPARISON_OPS:
            return left.compare(expr.op, right)
        if expr.op in ("&&", "||"):
            lt, rt = left.truth(), right.truth()
            if expr.op == "&&":
                if lt is True and rt is True:
                    return Interval.const(1, width)
                if lt is False or rt is False:
                    return Interval.const(0, width)
            else:
                if lt is True or rt is True:
                    return Interval.const(1, width)
                if lt is False and rt is False:
                    return Interval.const(0, width)
            return Interval.boolean()
        return Interval.top(width)

    def _eval_call(self, call: ast.Call, state: IntervalState) -> Interval:
        if call.name == "nondet":
            return Interval.top(self.width)
        summary = self.summaries.get(call.name)
        if summary is None:
            return Interval.top(self.width)
        callee_params = self._callee_params(call.name)
        arguments: dict[str, Interval] = {}
        for position, arg in enumerate(call.args):
            value = self.eval(arg, state)
            if position < len(callee_params):
                arguments[callee_params[position]] = value
        site = self.call_arguments.setdefault(call.name, {})
        for name, interval in arguments.items():
            site[name] = site.get(name, Interval.bottom()).join(interval)
        return summary.returns

    def _callee_params(self, name: str) -> tuple[str, ...]:
        summary = self.summaries.get(name)
        if summary is not None and summary.params:
            return tuple(summary.params)
        return ()

    # ------------------------------------------------------------ refinement

    def refine_condition(
        self, expr: ast.Expr, assumed: bool, state: IntervalState
    ) -> Optional[IntervalState]:
        """Refine ``state`` under ``truth(expr) == assumed``; ``None`` when
        the condition is provably impossible there (an infeasible edge)."""
        value = self.eval(expr, state)
        truth = value.truth()
        if truth is not None and truth != assumed:
            return None
        if isinstance(expr, ast.UnaryOp) and expr.op == "!":
            return self.refine_condition(expr.operand, not assumed, state)
        if isinstance(expr, ast.BinaryOp):
            if expr.op in ("&&", "||"):
                conjunction = (expr.op == "&&") == assumed
                if (expr.op == "&&" and assumed) or (expr.op == "||" and not assumed):
                    # Both conjuncts constrained the same way.
                    state = self.refine_condition(expr.left, assumed, state)
                    if state is None:
                        return None
                    return self.refine_condition(expr.right, assumed, state)
                del conjunction
                return state  # one of two disjuncts holds: nothing certain
            if expr.op in COMPARISON_OPS:
                op = expr.op if assumed else _negate_comparison(expr.op)
                return self._refine_comparison(expr.left, op, expr.right, state)
        if isinstance(expr, ast.VarRef):
            interval = self._read_scalar(expr.name, state)
            if assumed:
                refined = interval._trim(Interval.const(0, self.width))
            else:
                refined = interval.meet(Interval.const(0, self.width))
            if refined.empty:
                return None
            self._narrow_scalar(expr.name, refined, state)
            return state
        return state

    def _refine_comparison(
        self, left: ast.Expr, op: str, right: ast.Expr, state: IntervalState
    ) -> Optional[IntervalState]:
        left_val = self.eval(left, state)
        right_val = self.eval(right, state)
        left_refined, right_refined = left_val.refine(op, right_val)
        if left_refined.empty or right_refined.empty:
            return None
        if not self._refine_expr(left, left_val, left_refined, state):
            return None
        if not self._refine_expr(right, right_val, right_refined, state):
            return None
        return state

    def _refine_expr(
        self, expr: ast.Expr, old: Interval, new: Interval, state: IntervalState
    ) -> bool:
        """Push a tightened interval back through an expression.

        Handles variables directly and one level of arithmetic structure
        (``a + b``, ``a - b``, ``a * b`` with positive factors, ``-a``) so
        that e.g. ``assume(rows * cols <= 8)`` bounds both factors.  Only
        applies when the operation provably cannot wrap, since the backward
        rules reason in unbounded arithmetic.  Returns False when the state
        became infeasible.
        """
        if new.empty:
            return False
        if old.lo >= new.lo and old.hi <= new.hi:
            return True  # nothing tightened
        if isinstance(expr, ast.VarRef):
            current = self._read_scalar(expr.name, state)
            refined = current.meet(new)
            if refined.empty:
                return False
            self._narrow_scalar(expr.name, refined, state)
            return True
        if isinstance(expr, ast.UnaryOp) and expr.op == "-":
            inner = self.eval(expr.operand, state)
            return self._refine_expr(expr.operand, inner, inner.meet(new.neg(self.width)), state)
        if isinstance(expr, ast.BinaryOp) and expr.op in ("+", "-", "*"):
            a = self.eval(expr.left, state)
            b = self.eval(expr.right, state)
            if a.empty or b.empty or a.overflow_possible(b, expr.op, self.width):
                return True
            if expr.op == "+":
                return self._refine_expr(
                    expr.left, a, a.meet(new.sub(b, self.width)), state
                ) and self._refine_expr(expr.right, b, b.meet(new.sub(a, self.width)), state)
            if expr.op == "-":
                return self._refine_expr(
                    expr.left, a, a.meet(new.add(b, self.width)), state
                ) and self._refine_expr(
                    expr.right, b, b.meet(a.sub(new, self.width)), state
                )
            if a.lo >= 1 and b.lo >= 1 and new.hi >= 1:
                # a * b <= hi with positive factors: a <= hi / b.lo etc.
                return self._refine_expr(
                    expr.left, a, a.meet(Interval(a.lo, new.hi // b.lo)), state
                ) and self._refine_expr(
                    expr.right, b, b.meet(Interval(b.lo, new.hi // a.lo)), state
                )
        return True

    # --------------------------------------------------------------- plumbing

    def _is_local(self, name: str) -> bool:
        return name in self.locals

    def _read_scalar(self, name: str, state: IntervalState) -> Interval:
        if self._is_local(name):
            return state.scalars.get(name, Interval.top(self.width))
        return self.global_scalars.get(name, Interval.top(self.width))

    def _read_array(self, name: str, state: IntervalState) -> Interval:
        if name in state.arrays:
            return state.arrays[name]
        return self.global_arrays.get(name, Interval.top(self.width))

    def _array_size(self, name: str) -> Optional[int]:
        return self.array_sizes.get(name)

    def _write_scalar(
        self, name: str, value: Interval, state: IntervalState, declare: bool = False
    ) -> None:
        if declare or self._is_local(name):
            state.scalars[name] = value
        else:
            self.global_scalar_writes[name] = (
                self.global_scalar_writes.get(name, Interval.bottom()).join(value)
            )

    def _narrow_scalar(self, name: str, value: Interval, state: IntervalState) -> None:
        """Refinements tighten locals in place; globals are left alone (the
        invariant is flow-insensitive, narrowing it would be unsound)."""
        if self._is_local(name):
            state.scalars[name] = value

    def _write_array(self, name: str, value: Interval, state: IntervalState) -> None:
        if name in state.arrays:  # weak update: cells join the stored value
            state.arrays[name] = state.arrays[name].join(value)
        else:
            self.global_array_writes[name] = (
                self.global_array_writes.get(name, Interval.bottom()).join(value)
            )

    def observed_intervals(
        self, states: dict[int, IntervalState]
    ) -> dict[str, Interval]:
        """Join of each variable's interval over the solved program points
        (array cells under the ``name[]`` key).  Computed from the final
        fixpoint, not during iteration, so transient pre-descending widened
        states do not pollute the result."""
        observed: dict[str, Interval] = {}
        for state in states.values():
            for name, interval in state.scalars.items():
                observed[name] = observed.get(name, Interval.bottom()).join(interval)
            for name, interval in state.arrays.items():
                key = f"{name}[]"
                observed[key] = observed.get(key, Interval.bottom()).join(interval)
        return observed


def _negate_comparison(op: str) -> str:
    return {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}[op]


# ---------------------------------------------------------------- constants


class ConstantDomain:
    """Flat constant propagation over local scalars (intraprocedural)."""

    def __init__(self, function: ast.Function, width: int = DEFAULT_WIDTH) -> None:
        self.function = function
        self.width = width
        self.locals = function_local_names(function)

    def entry_state(self) -> dict[str, int]:
        return {}

    def join(self, a: dict[str, int], b: dict[str, int]) -> dict[str, int]:
        return {name: a[name] for name in a if name in b and a[name] == b[name]}

    def widen(self, a: dict[str, int], b: dict[str, int]) -> dict[str, int]:
        return self.join(a, b)

    def equal(self, a: dict[str, int], b: dict[str, int]) -> bool:
        return a == b

    def transfer(self, node: Node, state: dict[str, int]) -> Optional[dict[str, int]]:
        stmt = node.stmt
        if stmt is None:
            return state
        if isinstance(stmt, (ast.VarDecl, ast.Assign)):
            name = stmt.name
            if name in self.locals:
                value_expr = stmt.init if isinstance(stmt, ast.VarDecl) else stmt.value
                value = (
                    0
                    if value_expr is None and isinstance(stmt, ast.VarDecl)
                    else self.eval(value_expr, state)
                )
                state = dict(state)
                if value is None:
                    state.pop(name, None)
                else:
                    state[name] = value
        return state

    def refine_edge(self, edge: Edge, state: dict[str, int]) -> Optional[dict[str, int]]:
        return state

    def eval(self, expr: Optional[ast.Expr], state: dict[str, int]) -> Optional[int]:
        if expr is None:
            return None
        if isinstance(expr, ast.IntLiteral):
            from repro.lang.semantics import wrap

            return wrap(expr.value, self.width)
        if isinstance(expr, ast.VarRef):
            return state.get(expr.name)
        if isinstance(expr, ast.UnaryOp):
            operand = self.eval(expr.operand, state)
            if operand is None:
                return None
            return apply_unary(expr.op, operand, self.width)
        if isinstance(expr, ast.BinaryOp):
            left = self.eval(expr.left, state)
            right = self.eval(expr.right, state)
            if left is None or right is None:
                return None
            return apply_binary(expr.op, left, right, self.width)
        if isinstance(expr, ast.Conditional):
            cond = self.eval(expr.cond, state)
            if cond is None:
                return None
            return self.eval(expr.then if cond != 0 else expr.otherwise, state)
        return None


# ------------------------------------------------------------ definite init


class DefiniteInitDomain:
    """Must-analysis of definitely-assigned locals.

    mini-C gives declaration-without-initializer a defined value (0), so a
    read before any explicit assignment is legal — but in the C programs
    these benchmarks model it would be undefined behaviour, which is why it
    is surfaced as a lint warning rather than an error.
    """

    def __init__(self, function: ast.Function) -> None:
        self.function = function
        #: Locals declared without an initializer anywhere in the body.
        self.implicit_zero: set[str] = set()

        def visit(statements: tuple[ast.Stmt, ...]) -> None:
            for stmt in statements:
                if isinstance(stmt, ast.VarDecl) and stmt.init is None:
                    self.implicit_zero.add(stmt.name)
                elif isinstance(stmt, ast.If):
                    visit(stmt.then_body)
                    visit(stmt.else_body)
                elif isinstance(stmt, ast.While):
                    visit(stmt.body)

        visit(function.body)

    def entry_state(self) -> frozenset:
        return frozenset(self.function.params)

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a & b

    def widen(self, a: frozenset, b: frozenset) -> frozenset:
        return a & b

    def equal(self, a: frozenset, b: frozenset) -> bool:
        return a == b

    def transfer(self, node: Node, state: frozenset) -> Optional[frozenset]:
        stmt = node.stmt
        if stmt is None:
            return state
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                return state | {stmt.name}
            return state - {stmt.name}  # redeclared: back to implicit zero
        if isinstance(stmt, ast.Assign):
            return state | {stmt.name}
        return state

    def refine_edge(self, edge: Edge, state: frozenset) -> Optional[frozenset]:
        return state


class LiveLocalsDomain:
    """May-analysis of live local variables, run over a reversed CFG.

    The forward solver on :meth:`~repro.cfg.graph.FunctionGraph.reversed_view`
    computes classic backward liveness: the state the solver reports *into*
    a node is the set of locals whose current value may still be read after
    the node executes.  A scalar store whose target is not in that set is a
    dead store (powering the ``dead-store`` lint).

    Only locals (parameters and declared variables) are tracked — a global
    is observable by callers after the function returns, so a store to it
    is never provably dead from inside one function.  An element store
    ``a[i] = v`` does not kill ``a`` (it redefines one cell), and any array
    read keeps the whole array live; whole-array precision is deliberately
    coarse but sound for a may-analysis.
    """

    def __init__(self, function: ast.Function) -> None:
        from repro.cfg.defuse import function_local_names as _locals

        self.function = function
        self.locals = frozenset(_locals(function))

    def entry_state(self) -> frozenset:
        # The reversed entry is the function exit: no local outlives it.
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def widen(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b  # finite lattice: the join already converges

    def equal(self, a: frozenset, b: frozenset) -> bool:
        return a == b

    def transfer(self, node: Node, state: frozenset) -> Optional[frozenset]:
        from repro.cfg.defuse import statement_uses

        stmt = node.stmt
        if stmt is None:
            return state
        # ``state`` is live-after in execution order; produce live-before.
        if isinstance(stmt, (ast.Assign, ast.VarDecl, ast.ArrayDecl)):
            state = state - {stmt.name}
        gen = statement_uses(stmt) & self.locals
        return state | gen

    def refine_edge(self, edge: Edge, state: frozenset) -> Optional[frozenset]:
        return state
