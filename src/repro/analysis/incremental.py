"""Round-trajectory caching for incremental re-analysis.

The interprocedural driver in :mod:`repro.analysis.analyzer` reaches its
fixpoint through a deterministic sequence of rounds; within one round every
function is solved independently from a snapshot of the interprocedural
environment (its parameter intervals, its callees' return summaries, the
global invariant and the array-size table).  The solve is a pure function
of that environment plus the function's body — so a later analysis of a
*changed* program can skip the solve for any hash-identical function whose
environment at the same round compares equal to the recorded one, and
replay the recorded outputs instead.

That replay is exact, not approximate: a cache hit reproduces precisely
what a live solve would have produced, and a miss falls back to the live
solve — the incremental fixpoint is therefore value-identical to the cold
one on every program, which is what lets the splice path compare narrowing
tables across versions byte-for-byte.

The :class:`AnalysisCache` produced by a recorded run is stored inside the
compiled artifact (everything in it pickles: intervals are frozen
dataclasses, diagnostics are plain records).  Line-keyed products carry
*base* line numbers; consumers remap them through the positional line map
of :mod:`repro.analysis.impact` before use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.intervals import Interval
from repro.cfg.defuse import function_local_names
from repro.lang import ast
from repro.lang.diagnostics import Diagnostic

#: Cache layout version — bump on any shape change so stale caches from
#: older artifacts are ignored rather than misread.
ANALYSIS_CACHE_VERSION = 2


@dataclass
class RoundRecord:
    """One fixpoint round: per-function environments and solve outputs."""

    #: Parameter intervals each function was solved under.
    params: dict[str, dict[str, Interval]] = field(default_factory=dict)
    #: Return-summary interval of every function at the round's start
    #: (the values callee evaluation reads during the solve).
    returns: dict[str, Interval] = field(default_factory=dict)
    #: Global invariant at the round's start.
    global_scalars: dict[str, Interval] = field(default_factory=dict)
    global_arrays: dict[str, Interval] = field(default_factory=dict)
    #: Solve outputs per function:
    #: ``(returned, call_arguments, global_scalar_writes, global_array_writes)``.
    outputs: dict[str, tuple] = field(default_factory=dict)


@dataclass
class FunctionProducts:
    """Final per-function analysis products, keyed for cross-version reuse.

    Line keys are the *recording* program's lines; remap through a line map
    before merging into a new :class:`~repro.analysis.analyzer.AnalysisResult`.
    """

    write_intervals: dict[int, Interval] = field(default_factory=dict)
    flow_write_intervals: dict[int, Interval] = field(default_factory=dict)
    variable_intervals: dict[str, Interval] = field(default_factory=dict)
    diagnostics: tuple[Diagnostic, ...] = ()
    #: Trip-count verdicts per guard line (``repro.analysis.loops``).
    #: Unwind-independent, so they transfer across encoding options; the
    #: unwind-dependent loop lints are re-derived from them after replay.
    loop_bounds: dict[int, "LoopBound"] = field(default_factory=dict)  # noqa: F821


@dataclass
class AnalysisCache:
    """Everything a later run needs to skip unchanged functions."""

    entry: str
    width: int
    array_sizes: dict[str, int] = field(default_factory=dict)
    rounds: list[RoundRecord] = field(default_factory=list)
    #: Environment of the final round (== the post-fixpoint environment the
    #: collectors and lints ran under), for product-reuse checks that must
    #: not depend on the two runs converging in the same number of rounds.
    final: Optional[RoundRecord] = None
    products: dict[str, FunctionProducts] = field(default_factory=dict)
    #: Per-function read sets: ``(callees, non-local names)``; recorded so a
    #: warm run compares only the environment slice a function can observe.
    reads: dict[str, tuple[frozenset, frozenset]] = field(default_factory=dict)
    version: int = ANALYSIS_CACHE_VERSION

    def usable_for(self, entry: str, width: int) -> bool:
        return (
            self.version == ANALYSIS_CACHE_VERSION
            and self.entry == entry
            and self.width == width
        )


def function_reads(function: ast.Function) -> tuple[frozenset, frozenset]:
    """``(callees, non-local identifiers)`` a function's analysis can read.

    The second component over-approximates the function's window onto the
    global invariant: every variable or array name mentioned anywhere in
    the body that is neither a parameter nor a local declaration.  Write
    targets are included on purpose — the collectors join a written
    global's whole-program domain into the narrowing entry, so the global's
    invariant value is an analysis *input* even at a pure write site.
    """
    locals_ = function_local_names(function)
    callees: set[str] = set()
    names: set[str] = set()

    def visit_expr(expr: Optional[ast.Expr]) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.VarRef):
            names.add(expr.name)
        elif isinstance(expr, ast.ArrayRef):
            names.add(expr.name)
            visit_expr(expr.index)
        elif isinstance(expr, ast.UnaryOp):
            visit_expr(expr.operand)
        elif isinstance(expr, ast.BinaryOp):
            visit_expr(expr.left)
            visit_expr(expr.right)
        elif isinstance(expr, ast.Conditional):
            visit_expr(expr.cond)
            visit_expr(expr.then)
            visit_expr(expr.otherwise)
        elif isinstance(expr, ast.Call):
            callees.add(expr.name)
            for arg in expr.args:
                visit_expr(arg)

    def visit(statements: tuple[ast.Stmt, ...]) -> None:
        for stmt in statements:
            if isinstance(stmt, ast.VarDecl):
                visit_expr(stmt.init)
            elif isinstance(stmt, ast.ArrayDecl):
                for expr in stmt.init:
                    visit_expr(expr)
            elif isinstance(stmt, ast.Assign):
                names.add(stmt.name)
                visit_expr(stmt.value)
            elif isinstance(stmt, ast.ArrayAssign):
                names.add(stmt.name)
                visit_expr(stmt.index)
                visit_expr(stmt.value)
            elif isinstance(stmt, ast.If):
                visit_expr(stmt.cond)
                visit(stmt.then_body)
                visit(stmt.else_body)
            elif isinstance(stmt, ast.While):
                visit_expr(stmt.cond)
                visit(stmt.body)
            elif isinstance(stmt, (ast.Assert, ast.Assume)):
                visit_expr(stmt.cond)
            elif isinstance(stmt, ast.Return):
                visit_expr(stmt.value)
            elif isinstance(stmt, ast.Print):
                visit_expr(stmt.value)
            elif isinstance(stmt, ast.ExprStmt):
                visit_expr(stmt.expr)

    visit(function.body)
    return frozenset(callees), frozenset(names - locals_)


def environment_matches(
    name: str,
    reads: tuple[frozenset, frozenset],
    params: dict[str, Interval],
    returns: dict[str, Interval],
    global_scalars: dict[str, Interval],
    global_arrays: dict[str, Interval],
    record: RoundRecord,
) -> bool:
    """Does the live environment match ``record``'s, as seen by ``name``?

    Compares only the slice the function can observe: its own parameter
    intervals, its callees' return summaries, and the global-invariant
    entries for names it mentions.  Missing entries on both sides count as
    equal (both reads would see the same default).
    """
    if record.params.get(name) != params:
        return False
    callees, nonlocals = reads
    record_returns = record.returns
    for callee in callees:
        if record_returns.get(callee) != returns.get(callee):
            return False
    record_scalars = record.global_scalars
    record_arrays = record.global_arrays
    for var in nonlocals:
        if record_scalars.get(var) != global_scalars.get(var):
            return False
        if record_arrays.get(var) != global_arrays.get(var):
            return False
    return True


__all__ = [
    "ANALYSIS_CACHE_VERSION",
    "AnalysisCache",
    "FunctionProducts",
    "RoundRecord",
    "environment_matches",
    "function_reads",
]
