"""Interprocedural change-impact analysis between program versions.

The dominant production workload is "localize version N+1 after having
localized version N": a CI rerun after a one-line patch.  A cold compile
re-derives everything — the abstract fixpoint, the backward slice, the
whole gate arena — even though almost all of it is identical to the
previous version's artifact.  This module makes "identical" a provable
static judgment instead of a text diff.

Every function gets two canonical hashes, both *line-number free* so that
pure reformatting (a comment added above a function) never looks like a
semantic change:

* ``exact_hash`` keeps every identifier.  Two functions with equal exact
  hashes encode to the same gate structure given the same inputs, which is
  the property the journal-replay splice (:mod:`repro.bmc.splice`) relies
  on.
* ``body_hash`` alpha-renames parameters and locals (and the function's
  own name, so recursion survives) before hashing.  Equal body hashes with
  different names mean a *renamed-but-identical* function — reported by
  :func:`diff_fingerprints` so stores can still find a nearest ancestor
  across refactors.

A :class:`ProgramFingerprint` bundles the per-function signatures with a
per-global hash and is small enough to store inside every
:class:`~repro.bmc.compiled.CompiledProgram`.  Diffing two fingerprints
yields a :class:`ChangeSet`; closing it over the call graph yields an
:class:`ImpactSet` with two distinct closures:

* ``encoding_impacted`` — functions whose *inlined encoding subtree* can
  differ: the changed functions plus every (transitive) caller.  Anything
  outside this set replays verbatim from the base artifact's journal.
* ``analysis_impacted`` — functions whose abstract fixpoint inputs can
  differ: the closure of the changed set along *both* call-graph
  directions (callers see changed return summaries, callees see changed
  argument intervals) plus every function touching a changed global.

Line sequences are recorded per function so that a stored fingerprint can
be mapped onto a structurally identical function that merely moved in the
file (:func:`build_line_map`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.cfg.defuse import (
    call_graph,
    function_local_names,
    statement_calls,
    statement_defs,
    statement_uses,
)
from repro.lang import ast

__all__ = [
    "FunctionSignature",
    "ProgramFingerprint",
    "ChangeSet",
    "ImpactSet",
    "function_signature",
    "fingerprint_program",
    "diff_fingerprints",
    "compute_impact",
    "build_line_map",
    "program_line_map",
]


# ------------------------------------------------------------ canonical form


def _canonical_expr(expr: Optional[ast.Expr], out: list[str], rename: Optional[dict]) -> None:
    """Append a canonical token stream for ``expr`` (line numbers omitted)."""
    if expr is None:
        out.append("~")
        return
    if isinstance(expr, ast.IntLiteral):
        out.append(f"#{expr.value}")
    elif isinstance(expr, ast.VarRef):
        name = rename.get(expr.name, expr.name) if rename is not None else expr.name
        out.append(f"v:{name}")
    elif isinstance(expr, ast.ArrayRef):
        name = rename.get(expr.name, expr.name) if rename is not None else expr.name
        out.append(f"a:{name}[")
        _canonical_expr(expr.index, out, rename)
        out.append("]")
    elif isinstance(expr, ast.UnaryOp):
        out.append(f"u:{expr.op}(")
        _canonical_expr(expr.operand, out, rename)
        out.append(")")
    elif isinstance(expr, ast.BinaryOp):
        out.append(f"b:{expr.op}(")
        _canonical_expr(expr.left, out, rename)
        out.append(",")
        _canonical_expr(expr.right, out, rename)
        out.append(")")
    elif isinstance(expr, ast.Conditional):
        out.append("?(")
        _canonical_expr(expr.cond, out, rename)
        out.append(",")
        _canonical_expr(expr.then, out, rename)
        out.append(",")
        _canonical_expr(expr.otherwise, out, rename)
        out.append(")")
    elif isinstance(expr, ast.Call):
        name = rename.get(expr.name, expr.name) if rename is not None else expr.name
        out.append(f"c:{name}(")
        for arg in expr.args:
            _canonical_expr(arg, out, rename)
            out.append(",")
        out.append(")")
    else:  # pragma: no cover - parser produces no other node kinds
        raise TypeError(f"unknown expression node {type(expr).__name__}")


def _canonical_stmts(
    statements: tuple[ast.Stmt, ...],
    out: list[str],
    rename: Optional[dict],
) -> None:
    for stmt in statements:
        if isinstance(stmt, ast.VarDecl):
            name = rename.get(stmt.name, stmt.name) if rename is not None else stmt.name
            out.append(f"decl:{name}=")
            _canonical_expr(stmt.init, out, rename)
        elif isinstance(stmt, ast.ArrayDecl):
            name = rename.get(stmt.name, stmt.name) if rename is not None else stmt.name
            out.append(f"adecl:{name}[{stmt.size}]=")
            for init in stmt.init:
                _canonical_expr(init, out, rename)
                out.append(",")
        elif isinstance(stmt, ast.Assign):
            name = rename.get(stmt.name, stmt.name) if rename is not None else stmt.name
            out.append(f"set:{name}=")
            _canonical_expr(stmt.value, out, rename)
        elif isinstance(stmt, ast.ArrayAssign):
            name = rename.get(stmt.name, stmt.name) if rename is not None else stmt.name
            out.append(f"aset:{name}[")
            _canonical_expr(stmt.index, out, rename)
            out.append("]=")
            _canonical_expr(stmt.value, out, rename)
        elif isinstance(stmt, ast.If):
            out.append("if(")
            _canonical_expr(stmt.cond, out, rename)
            out.append("){")
            _canonical_stmts(stmt.then_body, out, rename)
            out.append("}else{")
            _canonical_stmts(stmt.else_body, out, rename)
            out.append("}")
        elif isinstance(stmt, ast.While):
            out.append("while(")
            _canonical_expr(stmt.cond, out, rename)
            out.append("){")
            _canonical_stmts(stmt.body, out, rename)
            out.append("}")
        elif isinstance(stmt, ast.Return):
            out.append("ret:")
            _canonical_expr(stmt.value, out, rename)
        elif isinstance(stmt, ast.Assert):
            out.append("assert:")
            _canonical_expr(stmt.cond, out, rename)
        elif isinstance(stmt, ast.Assume):
            out.append("assume:")
            _canonical_expr(stmt.cond, out, rename)
        elif isinstance(stmt, ast.ExprStmt):
            out.append("expr:")
            _canonical_expr(stmt.expr, out, rename)
        elif isinstance(stmt, ast.Print):
            out.append("print:")
            _canonical_expr(stmt.value, out, rename)
        else:  # pragma: no cover - parser produces no other node kinds
            raise TypeError(f"unknown statement node {type(stmt).__name__}")
        out.append(";")


def _alpha_rename_table(function: ast.Function) -> dict[str, str]:
    """Map parameters, locals and the function's own name to stable
    placeholders (binding order, which the canonical walk preserves)."""
    rename: dict[str, str] = {function.name: "@self"}
    for position, param in enumerate(function.params):
        rename[param] = f"@p{position}"
    counter = 0
    for name in sorted(function_local_names(function) - set(function.params)):
        rename[name] = f"@l{counter}"
        counter += 1
    return rename


def _digest(tokens: Iterable[str]) -> str:
    return hashlib.sha256("".join(tokens).encode("utf-8")).hexdigest()[:32]


def _statement_line_sequence(statements: tuple[ast.Stmt, ...], out: list[int]) -> None:
    for stmt in statements:
        out.append(stmt.line)
        if isinstance(stmt, ast.If):
            _statement_line_sequence(stmt.then_body, out)
            _statement_line_sequence(stmt.else_body, out)
        elif isinstance(stmt, ast.While):
            _statement_line_sequence(stmt.body, out)


# ---------------------------------------------------------------- signatures


@dataclass(frozen=True)
class FunctionSignature:
    """The stable canonical identity of one function."""

    name: str
    #: Name-preserving, line-free hash: equality means the function encodes
    #: to the same gate structure given the same interface bits.
    exact_hash: str
    #: Alpha-renamed, line-free hash: equality across different names means
    #: a renamed-but-identical function.
    body_hash: str
    #: Number of declared parameters (part of the callable interface).
    arity: int
    returns_value: bool
    #: Global-ish free names the body references (reads *or* writes):
    #: anything that is neither a parameter nor a declared local.
    free_globals: tuple[str, ...]
    #: Functions called directly from the body.
    calls: tuple[str, ...]
    #: Source lines of every statement in canonical walk order — the key to
    #: remapping stored line-keyed facts onto a shifted but structurally
    #: identical body.
    line_sequence: tuple[int, ...]
    #: Hash of exactly what the backward slicer consumes from this body:
    #: per statement (in collect order) its kind, line, scope-qualified
    #: defs and uses, callee names, and the control-nesting brackets.  Two
    #: versions whose functions all match on this hash (and share the same
    #: function-name set) have provably identical backward slices, so a
    #: warm compile reuses the base artifact's ``pruned_lines`` verbatim —
    #: operator and constant mutations preserve it, so the dominant
    #: one-line-patch workload skips the slice fixpoint entirely.
    slice_hash: str = ""

    @property
    def num_statements(self) -> int:
        return len(self.line_sequence)


def function_signature(function: ast.Function) -> FunctionSignature:
    """Compute the canonical signature of one function."""
    # Interface tokens: arity and whether a value is returned are part of
    # both hashes (a signature change must never hash equal).
    header = f"fn/{len(function.params)}/{int(function.returns_value)}:"
    exact_tokens: list[str] = [header]
    for param in function.params:
        exact_tokens.append(f"p:{param},")
    _canonical_stmts(function.body, exact_tokens, rename=None)

    rename = _alpha_rename_table(function)
    alpha_tokens: list[str] = [header]
    _canonical_stmts(function.body, alpha_tokens, rename=rename)

    locals_and_params = function_local_names(function) | set(function.params)
    free: set[str] = set()
    calls: set[str] = set()
    slice_tokens: list[str] = [header]

    def scope_qualified(names: set[str]) -> str:
        return ",".join(
            sorted(
                ("L:" if name in locals_and_params else "G:") + name
                for name in names
            )
        )

    def visit_stmts(statements: tuple[ast.Stmt, ...]) -> None:
        for stmt in statements:
            uses = statement_uses(stmt)
            defs = statement_defs(stmt)
            stmt_calls = statement_calls(stmt)
            free.update(uses - locals_and_params)
            free.update(defs - locals_and_params)
            calls.update(stmt_calls)
            slice_tokens.append(
                f"{type(stmt).__name__}@{stmt.line}"
                f"|d={scope_qualified(defs)}"
                f"|u={scope_qualified(uses)}"
                f"|c={','.join(sorted(stmt_calls))};"
            )
            if isinstance(stmt, ast.If):
                slice_tokens.append("{")
                visit_stmts(stmt.then_body)
                slice_tokens.append("}{")
                visit_stmts(stmt.else_body)
                slice_tokens.append("}")
            elif isinstance(stmt, ast.While):
                slice_tokens.append("{")
                visit_stmts(stmt.body)
                slice_tokens.append("}")

    visit_stmts(function.body)
    lines: list[int] = []
    _statement_line_sequence(function.body, lines)
    return FunctionSignature(
        name=function.name,
        exact_hash=_digest(exact_tokens),
        body_hash=_digest(alpha_tokens),
        arity=len(function.params),
        returns_value=function.returns_value,
        free_globals=tuple(sorted(free)),
        calls=tuple(sorted(calls)),
        line_sequence=tuple(lines),
        slice_hash=_digest(slice_tokens),
    )


@dataclass(frozen=True)
class ProgramFingerprint:
    """Per-function signatures plus a per-global hash for one program."""

    functions: Mapping[str, FunctionSignature]
    #: ``name -> canonical hash`` of each global declaration.  Order matters
    #: for initialization, so the declaration *sequence* is hashed too.
    global_hashes: Mapping[str, str]
    globals_order_hash: str
    #: ``name -> statically evaluated initializer``: an ``int`` for scalar
    #: globals, a size-padded tuple of ints for arrays, or ``None`` when the
    #: initializer is not a literal constant.  A re-initialized global whose
    #: old and new values are both known lets a warm compile substitute the
    #: new constant pattern instead of declining the whole splice.
    global_inits: Mapping[str, object] = field(default_factory=dict)

    def function_hashes(self) -> dict[str, str]:
        return {name: sig.exact_hash for name, sig in self.functions.items()}

    def shared_statements(self, other: "ProgramFingerprint") -> int:
        """Number of statements living in functions whose exact hashes match
        between the two fingerprints — the store's nearest-ancestor score."""
        shared = 0
        for name, sig in self.functions.items():
            base = other.functions.get(name)
            if base is not None and base.exact_hash == sig.exact_hash:
                shared += sig.num_statements
        return shared

    def total_statements(self) -> int:
        return sum(sig.num_statements for sig in self.functions.values())


def _literal_value(expr: Optional[ast.Expr]) -> Optional[int]:
    """Statically evaluate a literal (possibly negated) initializer."""
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        inner = _literal_value(expr.operand)
        return None if inner is None else -inner
    return None


def _global_init_value(decl: ast.Stmt) -> Optional[object]:
    if isinstance(decl, ast.VarDecl):
        return 0 if decl.init is None else _literal_value(decl.init)
    if isinstance(decl, ast.ArrayDecl):
        cells = [0] * decl.size
        for index, expr in enumerate(decl.init):
            value = _literal_value(expr)
            if value is None:
                return None
            cells[index] = value
        return tuple(cells)
    return None  # pragma: no cover - parser emits no other global decls


def fingerprint_program(program: ast.Program) -> ProgramFingerprint:
    """Fingerprint every function and global declaration of ``program``."""
    functions = {name: function_signature(fn) for name, fn in program.functions.items()}
    global_hashes: dict[str, str] = {}
    global_inits: dict[str, object] = {}
    order_tokens: list[str] = []
    for decl in program.globals:
        tokens: list[str] = []
        _canonical_stmts((decl,), tokens, rename=None)
        global_hashes[decl.name] = _digest(tokens)
        global_inits[decl.name] = _global_init_value(decl)
        order_tokens.append(decl.name)
        order_tokens.append(global_hashes[decl.name])
    return ProgramFingerprint(
        functions=functions,
        global_hashes=global_hashes,
        globals_order_hash=_digest(order_tokens),
        global_inits=global_inits,
    )


# ---------------------------------------------------------------------- diff


@dataclass(frozen=True)
class ChangeSet:
    """The raw difference between two fingerprints (base → new)."""

    #: Present in both versions with different exact hashes.
    changed: tuple[str, ...]
    added: tuple[str, ...]
    removed: tuple[str, ...]
    #: ``(base_name, new_name)`` pairs among added/removed whose alpha-renamed
    #: body hashes match: renamed-but-identical functions.
    renamed: tuple[tuple[str, str], ...]
    #: Global declarations that were added, removed, re-typed or re-initialized.
    changed_globals: tuple[str, ...]
    #: True when global declaration *order* changed even if each declaration
    #: is individually unchanged (initialization order is observable).
    globals_reordered: bool

    @property
    def is_identical(self) -> bool:
        return not (self.changed or self.added or self.removed or self.changed_globals or self.globals_reordered)


def diff_fingerprints(base: ProgramFingerprint, new: ProgramFingerprint) -> ChangeSet:
    """Structurally diff two program fingerprints."""
    changed = tuple(
        sorted(
            name
            for name, sig in new.functions.items()
            if name in base.functions and base.functions[name].exact_hash != sig.exact_hash
        )
    )
    added = tuple(sorted(set(new.functions) - set(base.functions)))
    removed = tuple(sorted(set(base.functions) - set(new.functions)))
    renamed: list[tuple[str, str]] = []
    claimed: set[str] = set()
    for old_name in removed:
        old_sig = base.functions[old_name]
        for new_name in added:
            if new_name in claimed:
                continue
            if new.functions[new_name].body_hash == old_sig.body_hash:
                renamed.append((old_name, new_name))
                claimed.add(new_name)
                break
    changed_globals = tuple(
        sorted(
            set(
                name
                for name in set(base.global_hashes) | set(new.global_hashes)
                if base.global_hashes.get(name) != new.global_hashes.get(name)
            )
        )
    )
    return ChangeSet(
        changed=changed,
        added=added,
        removed=removed,
        renamed=tuple(renamed),
        changed_globals=changed_globals,
        globals_reordered=(
            base.globals_order_hash != new.globals_order_hash and not changed_globals
        ),
    )


# --------------------------------------------------------------- impact sets


@dataclass(frozen=True)
class ImpactSet:
    """Change closure over the new program's call graph."""

    #: Functions whose own body differs (changed + added).
    changed: frozenset[str]
    #: Functions whose inlined encoding subtree can differ: ``changed`` plus
    #: every transitive caller.  Statements outside these functions replay
    #: verbatim from a base artifact.
    encoding_impacted: frozenset[str]
    #: Functions whose abstract-interpretation inputs can differ: the
    #: closure of ``changed`` along both call directions plus every function
    #: touching a changed global.
    analysis_impacted: frozenset[str]
    #: Fraction of statements (by count) living in directly changed
    #: functions — the quantity reported as ``impact_fraction`` in benches.
    impact_fraction: float


def compute_impact(program: ast.Program, changes: ChangeSet) -> ImpactSet:
    """Close a :class:`ChangeSet` over ``program``'s call graph.

    ``program`` is the *new* version; removed functions have no bodies here
    and only matter through their (changed) former callers.
    """
    graph = call_graph(program)
    callers: dict[str, set[str]] = {name: set() for name in program.functions}
    for caller, callees in graph.items():
        for callee in callees:
            if callee in callers:
                callers[callee].add(caller)

    changed = {name for name in changes.changed if name in program.functions}
    changed.update(name for name in changes.added if name in program.functions)

    def closure(seeds: set[str], neighbours: dict[str, set[str]]) -> set[str]:
        seen = set(seeds)
        stack = list(seeds)
        while stack:
            current = stack.pop()
            for nxt in neighbours.get(current, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    encoding = closure(set(changed), callers)

    analysis = closure(set(changed), callers) | closure(set(changed), graph)
    if changes.changed_globals or changes.globals_reordered:
        touched_globals = set(changes.changed_globals)
        for name, fn in program.functions.items():
            free = _free_globals(fn)
            if changes.globals_reordered or free & touched_globals:
                analysis.add(name)
        # A changed global can shift intervals anywhere it flows, so close
        # again over both directions from the newly added functions.
        analysis = closure(analysis, callers) | closure(analysis, graph)

    total = sum(len(sig_lines(fn)) for fn in program.functions.values())
    changed_statements = sum(len(sig_lines(program.functions[name])) for name in changed)
    fraction = (changed_statements / total) if total else 0.0
    return ImpactSet(
        changed=frozenset(changed),
        encoding_impacted=frozenset(encoding),
        analysis_impacted=frozenset(analysis),
        impact_fraction=fraction,
    )


def _free_globals(function: ast.Function) -> set[str]:
    return set(function_signature(function).free_globals)


def sig_lines(function: ast.Function) -> list[int]:
    lines: list[int] = []
    _statement_line_sequence(function.body, lines)
    return lines


# ----------------------------------------------------------------- line maps


def build_line_map(
    base_lines: tuple[int, ...], new_function: ast.Function
) -> Optional[dict[int, int]]:
    """Positionally map a stored line sequence onto ``new_function``.

    Returns ``base_line -> new_line`` or ``None`` when the sequences have
    different lengths (different structure — never map in that case).  The
    map is only meaningful when the stored signature's ``exact_hash``
    matches ``new_function``; callers check that first.
    """
    new_lines = sig_lines(new_function)
    if len(new_lines) != len(base_lines):
        return None
    mapping: dict[int, int] = {}
    for base_line, new_line in zip(base_lines, new_lines):
        existing = mapping.get(base_line)
        if existing is not None and existing != new_line:
            return None  # one base line split into several — ambiguous
        mapping[base_line] = new_line
    return mapping


def program_line_map(
    base: ProgramFingerprint,
    program: ast.Program,
    new: Optional[ProgramFingerprint] = None,
) -> Optional[dict[int, int]]:
    """Line map across every function with matching exact hashes.

    Only those functions need mapping: changed functions are re-derived
    from the new AST and already carry new lines.  Returns ``None`` when
    any shared line maps ambiguously (distinct functions on one line —
    does not happen with the repo's one-statement-per-line corpus, but
    correctness must not depend on that).  Passing the new program's
    already-computed fingerprint as ``new`` skips re-deriving signatures.
    """
    mapping: dict[int, int] = {}
    for name, fn in program.functions.items():
        base_sig = base.functions.get(name)
        if base_sig is None:
            continue
        if new is not None:
            new_sig = new.functions[name]
        else:
            new_sig = function_signature(fn)
        if new_sig.exact_hash != base_sig.exact_hash:
            continue
        if new_sig.line_sequence == base_sig.line_sequence:
            # Common case: the function did not move — identity entries.
            for line in base_sig.line_sequence:
                existing = mapping.get(line)
                if existing is None:
                    mapping[line] = line
                elif existing != line:
                    return None
            continue
        local = build_line_map(base_sig.line_sequence, fn)
        if local is None:
            return None
        for base_line, new_line in local.items():
            existing = mapping.get(base_line)
            if existing is not None and existing != new_line:
                return None
            mapping[base_line] = new_line
    return mapping
