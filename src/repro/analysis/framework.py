"""The worklist dataflow solver over ``repro.cfg`` function graphs.

Generic over an abstract domain: the solver owns iteration order (reverse
postorder), convergence detection, widening at loop heads and the optional
descending ("narrowing") passes that recover precision lost to widening.
Domains own states and transfer functions.  Unreachable nodes simply never
receive a state — their absence from the result is what the diagnostics
engine reports as dead code.
"""

from __future__ import annotations

import heapq
from typing import Any, Optional, Protocol

from repro.cfg.graph import Edge, FunctionGraph, Node

#: Loop-head visits before widening kicks in (a little precision for the
#: first trips around the loop, guaranteed convergence afterwards).
WIDEN_AFTER = 2


class Domain(Protocol):
    """What the solver needs from an abstract domain."""

    def entry_state(self) -> Any:
        """State at the function entry."""

    def transfer(self, node: Node, state: Any) -> Optional[Any]:
        """State after the node's statement; ``None`` if execution cannot
        continue past it (e.g. a provably failing assumption)."""

    def refine_edge(self, edge: Edge, state: Any) -> Optional[Any]:
        """State along an outgoing edge; ``None`` when the edge is provably
        infeasible (branch refinement)."""

    def join(self, a: Any, b: Any) -> Any: ...

    def widen(self, a: Any, b: Any) -> Any: ...

    def equal(self, a: Any, b: Any) -> bool: ...


def solve(
    graph: FunctionGraph, domain: Domain, descend_rounds: int = 1
) -> dict[int, Any]:
    """Run the worklist iteration to a fixpoint.

    Returns the map from node index to its *input* state; nodes that never
    became reachable are absent.  ``descend_rounds`` extra reverse-postorder
    sweeps without widening tighten the loop-head states afterwards (the
    classic widen-then-narrow schedule).
    """
    order = graph.reverse_postorder()
    position = {node: rank for rank, node in enumerate(order)}
    states: dict[int, Any] = {graph.entry: domain.entry_state()}
    visits: dict[int, int] = {}

    queue: list[tuple[int, int]] = [(position[graph.entry], graph.entry)]
    queued = {graph.entry}
    while queue:
        _, node_index = heapq.heappop(queue)
        queued.discard(node_index)
        in_state = states.get(node_index)
        if in_state is None:
            continue
        out_state = domain.transfer(graph.nodes[node_index], in_state)
        if out_state is None:
            continue
        for edge in graph.successors(node_index):
            edge_state = domain.refine_edge(edge, out_state)
            if edge_state is None:
                continue
            target = edge.target
            old = states.get(target)
            if old is None:
                new = edge_state
            else:
                new = domain.join(old, edge_state)
                if graph.nodes[target].is_loop_head:
                    visits[target] = visits.get(target, 0) + 1
                    if visits[target] > WIDEN_AFTER:
                        new = domain.widen(old, new)
                if domain.equal(old, new):
                    continue
            states[target] = new
            if target not in queued and target in position:
                queued.add(target)
                heapq.heappush(queue, (position[target], target))

    for _ in range(descend_rounds):
        changed = False
        for node_index in order:
            if node_index == graph.entry:
                continue
            incoming = None
            for edge in graph.predecessors(node_index):
                source_state = states.get(edge.source)
                if source_state is None:
                    continue
                out_state = domain.transfer(graph.nodes[edge.source], source_state)
                if out_state is None:
                    continue
                edge_state = domain.refine_edge(edge, out_state)
                if edge_state is None:
                    continue
                incoming = edge_state if incoming is None else domain.join(incoming, edge_state)
            if incoming is None:
                continue
            old = states.get(node_index)
            # Descending iteration: only ever replace with a state at least
            # as precise — the meet with the ascending fixpoint is implied
            # because transfer functions are monotone.
            if old is None or not domain.equal(old, incoming):
                states[node_index] = incoming
                changed = True
        if not changed:
            break
    return states
