"""``python -m repro.analysis`` — the mini-C linter.

Runs the abstract-interpretation pass over one or more source files and
prints structured diagnostics, one per line, in the familiar
``file:line: severity: [code] message`` shape.  Exit status 1 when any
file produced an ERROR-severity diagnostic (parse error, type error,
constant division by zero, always-out-of-bounds index), 0 otherwise —
warnings do not fail the run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.analyzer import analyze_source
from repro.lang.diagnostics import diagnostics_to_wire


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Lint mini-C programs with the abstract-interpretation pass.",
    )
    parser.add_argument("files", nargs="+", help="mini-C source files")
    parser.add_argument(
        "--entry", default="main", help="entry function (default: main)"
    )
    parser.add_argument(
        "--width", type=int, default=16, help="bit width (default: 16)"
    )
    parser.add_argument(
        "--unwind",
        type=int,
        default=16,
        help="loop unrollings the encoder would perform (default: 16); the"
        " unwind-insufficient lint checks proven trip counts against it",
    )
    parser.add_argument(
        "--unwind-planning",
        action="store_true",
        help="assume per-loop unwind plans (proven-bounded loops unroll to"
        " their proven bound) when deriving loop diagnostics",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON object per file instead of text diagnostics",
    )
    args = parser.parse_args(argv)

    any_errors = False
    payloads = []
    for path_text in args.files:
        path = Path(path_text)
        try:
            source = path.read_text()
        except OSError as exc:
            print(f"{path}: cannot read: {exc}", file=sys.stderr)
            any_errors = True
            continue
        result = analyze_source(
            source,
            name=path.name,
            entry=args.entry,
            width=args.width,
            unwind=args.unwind,
            unwind_planning=args.unwind_planning,
        )
        if result.has_errors:
            any_errors = True
        if args.json:
            payloads.append(
                {
                    "file": str(path),
                    "ok": not result.has_errors,
                    "diagnostics": diagnostics_to_wire(result.diagnostics),
                }
            )
        else:
            for diagnostic in result.diagnostics:
                print(diagnostic.render(str(path)))
    if args.json:
        print(json.dumps(payloads, indent=2, sort_keys=True))
    return 1 if any_errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
