"""Loop-bound inference: per-loop trip-count verdicts over the CFG.

Every ``while`` loop head in a :class:`~repro.cfg.graph.FunctionGraph` is a
widening point of the interval analysis; this pass runs *after* the solver
and classifies each loop from the solved states:

* ``exact``   — the trip count is a single proven number;
* ``bounded`` — the trip count provably lies in ``[lo, hi]``;
* ``infinite`` — the guard is provably true at every evaluation and the
  body cannot escape (no ``return``): the loop never terminates;
* ``unknown`` — anything the monotone-guard reasoning cannot settle.

The reasoning is deliberately narrow but sound: it recognizes a single
*induction variable* — a local that the guard compares against a limit and
that the body updates exactly once, unconditionally, by a loop-invariant
constant step — and bounds the trip count with ceiling arithmetic over the
variable's pre-loop interval and the limit's interval at the guard.  The
limit may vary across iterations: its interval at the loop head covers
every value it takes at a guard evaluation, which keeps both the upper
bound (``limit.hi`` chases) and the lower bound (``limit.lo`` guarantees)
conservative.  A bound that could only be reached by wrapping the induction
variable around the width is rejected rather than reported.

Three consumers sit on top:

* :func:`plan_unwinds` turns proven bounds into per-loop unwind plans for
  the BMC (unroll exactly ``hi`` times, drop the unwinding assumption);
* :func:`lint_loops` derives the ``unwind-insufficient`` /
  ``nonterminating-loop`` / ``constant-false-guard`` diagnostics;
* the localizer renders ``(line, iteration)`` candidates whose unrolled
  clause groups this analysis makes affordable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from repro.analysis.domains import IntervalDomain, IntervalState
from repro.analysis.intervals import Interval, width_bounds
from repro.cfg.graph import FunctionGraph
from repro.lang import ast
from repro.lang.diagnostics import ERROR, WARNING, Diagnostic
from repro.lang.semantics import apply_binary, apply_unary, wrap

#: Loop-bound verdicts.
EXACT = "exact"
BOUNDED = "bounded"
INFINITE = "infinite"
UNKNOWN = "unknown"

#: A proven bound above this never becomes an unwind plan: unrolling tens of
#: thousands of iterations would swamp the solver long before the unwinding
#: assumption becomes the bottleneck.  Such loops keep the global unwind.
PLANNED_UNWIND_CAP = 256

#: ``limit OP var`` mirrored into ``var OP' limit``.
_MIRROR = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}


@dataclass(frozen=True)
class LoopBound:
    """The verdict for one ``while`` loop, anchored to its guard line."""

    line: int
    function: str
    verdict: str
    #: Proven minimum trip count (0 when nothing is proven).
    lo: int = 0
    #: Proven maximum trip count; ``None`` when no finite bound is proven.
    hi: Optional[int] = None
    induction_var: str = ""
    #: The guard is provably false on loop entry: the body never executes.
    guard_always_false: bool = False


# ------------------------------------------------------------------ inference


def infer_loop_bounds(
    function_name: str,
    graph: FunctionGraph,
    states: dict[int, IntervalState],
    domain: IntervalDomain,
) -> dict[int, LoopBound]:
    """Classify every reachable loop of one solved function.

    Keyed by guard line.  Unreachable loops are skipped — the dead-code
    lint already covers them, and they contribute no clauses either way.
    """
    bounds: dict[int, LoopBound] = {}
    for node in graph.nodes:
        stmt = node.stmt
        if not node.is_loop_head or not isinstance(stmt, ast.While):
            continue
        head = states.get(node.index)
        if head is None:
            continue
        entry = _entry_state(graph, states, domain, node.index)
        if entry is None:
            entry = head
        bounds[stmt.line] = _analyze_loop(function_name, stmt, head, entry, domain)
    return bounds


def _entry_state(
    graph: FunctionGraph,
    states: dict[int, IntervalState],
    domain: IntervalDomain,
    loop_index: int,
) -> Optional[IntervalState]:
    """The state on loop entry: the join over non-back-edge predecessors.

    Nodes are numbered in program order, so back edges are exactly the
    predecessors with a higher index than the loop head.
    """
    entry: Optional[IntervalState] = None
    for edge in graph.predecessors(loop_index):
        if edge.source > loop_index:
            continue
        source_state = states.get(edge.source)
        if source_state is None:
            continue
        out = domain.transfer(graph.nodes[edge.source], source_state)
        if out is None:
            continue
        refined = domain.refine_edge(edge, out)
        if refined is None:
            continue
        entry = refined if entry is None else domain.join(entry, refined)
    return entry


def _analyze_loop(
    function_name: str,
    stmt: ast.While,
    head: IntervalState,
    entry: IntervalState,
    domain: IntervalDomain,
) -> LoopBound:
    line = stmt.line

    def verdict(kind: str, lo: int = 0, hi: Optional[int] = None, var: str = "", always_false: bool = False) -> LoopBound:
        return LoopBound(
            line=line,
            function=function_name,
            verdict=kind,
            lo=lo,
            hi=hi,
            induction_var=var,
            guard_always_false=always_false,
        )

    if domain.eval(stmt.cond, entry).truth() is False:
        return verdict(EXACT, 0, 0, always_false=True)

    body = tuple(_walk(stmt.body))
    has_return = any(isinstance(s, ast.Return) for s in body)
    has_assume = any(isinstance(s, ast.Assume) for s in body)

    # The head state covers every guard evaluation, so a guard provably
    # true there is true on every iteration — without a ``return`` the
    # body cannot escape.  (Wrap-around escape hatches are safe: the
    # interval transfer goes TOP when the update can wrap, and TOP is
    # never provably true.)
    if domain.eval(stmt.cond, head).truth() is True and not has_return:
        return verdict(INFINITE)

    parsed = _parse_guard(stmt.cond)
    if parsed is None:
        return verdict(UNKNOWN)
    for var, op, limit_expr in parsed:
        if var not in domain.locals:
            continue
        step = _induction_step(stmt, var, head, domain)
        if step is None or step == 0:
            continue
        limit = domain.eval(limit_expr, head)
        entry_iv = entry.scalars.get(var, Interval.top(domain.width))
        if limit.empty or entry_iv.empty:
            continue
        trips = _trip_range(op, step, entry_iv, limit, domain.width)
        if trips is None:
            continue
        lo, hi = trips
        if has_return or has_assume:
            # Either can cut an iteration short, so only the upper bound
            # survives.
            lo = 0
        return verdict(EXACT if lo == hi else BOUNDED, lo, hi, var=var)
    return verdict(UNKNOWN)


def _parse_guard(cond: ast.Expr) -> Optional[list[tuple[str, str, ast.Expr]]]:
    """Candidate ``(var, op, limit)`` readings of a comparison guard."""
    if not isinstance(cond, ast.BinaryOp) or cond.op not in _MIRROR:
        return None
    candidates: list[tuple[str, str, ast.Expr]] = []
    if isinstance(cond.left, ast.VarRef):
        candidates.append((cond.left.name, cond.op, cond.right))
    if isinstance(cond.right, ast.VarRef):
        candidates.append((cond.right.name, _MIRROR[cond.op], cond.left))
    return candidates or None


def _induction_step(
    stmt: ast.While, var: str, head: IntervalState, domain: IntervalDomain
) -> Optional[int]:
    """The constant per-iteration step of ``var``, or ``None``.

    Requires exactly one write to ``var`` in the whole body, placed
    directly in the body block (so it runs unconditionally once per
    iteration), of the shape ``var = var ± step`` with a loop-invariant
    constant step.
    """
    writes = [
        s
        for s in _walk(stmt.body)
        if isinstance(s, (ast.Assign, ast.VarDecl)) and s.name == var
    ]
    if len(writes) != 1 or not isinstance(writes[0], ast.Assign):
        return None
    write = writes[0]
    if not any(s is write for s in stmt.body):
        return None
    value = write.value
    if not isinstance(value, ast.BinaryOp):
        return None
    if value.op == "+":
        if isinstance(value.left, ast.VarRef) and value.left.name == var:
            step_expr, sign = value.right, 1
        elif isinstance(value.right, ast.VarRef) and value.right.name == var:
            step_expr, sign = value.left, 1
        else:
            return None
    elif value.op == "-":
        if isinstance(value.left, ast.VarRef) and value.left.name == var:
            step_expr, sign = value.right, -1
        else:
            return None
    else:
        return None
    step = _invariant_const(step_expr, stmt, head, domain)
    if step is None:
        return None
    return sign * step


def _invariant_const(
    expr: ast.Expr, loop: ast.While, head: IntervalState, domain: IntervalDomain
) -> Optional[int]:
    """Value of a provably loop-invariant constant expression.

    A literal expression folds directly.  A local variable the body never
    writes falls back to its head-state interval — constant there means
    constant on every iteration, because the head state joins every
    arrival.  Anything else (globals a call might touch, array cells,
    expressions over mutated locals) is rejected: the head interval only
    bounds values *at the guard*, not at the update site mid-body.
    """
    folded = _fold_literal(expr, domain.width)
    if folded is not None:
        return folded
    if isinstance(expr, ast.VarRef) and expr.name in domain.locals:
        written = any(
            isinstance(s, (ast.Assign, ast.VarDecl)) and s.name == expr.name
            for s in _walk(loop.body)
        )
        if not written:
            return head.scalars.get(expr.name, Interval.top(domain.width)).const_value()
    return None


def _fold_literal(expr: ast.Expr, width: int) -> Optional[int]:
    if isinstance(expr, ast.IntLiteral):
        return wrap(expr.value, width)
    if isinstance(expr, ast.UnaryOp):
        operand = _fold_literal(expr.operand, width)
        return None if operand is None else apply_unary(expr.op, operand, width)
    if isinstance(expr, ast.BinaryOp):
        left = _fold_literal(expr.left, width)
        right = _fold_literal(expr.right, width)
        if left is None or right is None:
            return None
        return apply_binary(expr.op, left, right, width)
    return None


def _trip_range(
    op: str, step: int, entry: Interval, limit: Interval, width: int
) -> Optional[tuple[int, int]]:
    """``[lo, hi]`` trip counts for a monotone guard, or ``None``.

    All arithmetic is unbounded; a bound whose final induction value could
    leave the representable range (wrap) is rejected, because the interval
    reasoning above assumed no wrap.
    """
    wlo, whi = width_bounds(width)

    def ceil_div(a: int, b: int) -> int:
        return -((-a) // b)

    if op in ("<", "<="):
        if step <= 0:
            return None
        if op == "<":
            hi = ceil_div(limit.hi - entry.lo, step)
            lo = ceil_div(limit.lo - entry.hi, step)
            peak = limit.hi - 1 + step
        else:
            hi = (limit.hi - entry.lo) // step + 1
            lo = (limit.lo - entry.hi) // step + 1
            peak = limit.hi + step
        hi, lo = max(0, hi), max(0, lo)
        if hi > 0 and peak > whi:
            return None
        return lo, hi
    if op in (">", ">="):
        if step >= 0:
            return None
        down = -step
        if op == ">":
            hi = ceil_div(entry.hi - limit.lo, down)
            lo = ceil_div(entry.lo - limit.hi, down)
            trough = limit.lo + 1 - down
        else:
            hi = (entry.hi - limit.lo) // down + 1
            lo = (entry.lo - limit.hi) // down + 1
            trough = limit.lo - down
        hi, lo = max(0, hi), max(0, lo)
        if hi > 0 and trough < wlo:
            return None
        return lo, hi
    if op == "!=":
        # Sound only when every start value lands exactly on the limit.
        if not limit.is_const:
            return None
        target = limit.lo
        if step > 0:
            if entry.hi > target:
                return None
            if (target - entry.lo) % step or (target - entry.hi) % step:
                return None
            return (target - entry.hi) // step, (target - entry.lo) // step
        down = -step
        if entry.lo < target:
            return None
        if (entry.lo - target) % down or (entry.hi - target) % down:
            return None
        return (entry.lo - target) // down, (entry.hi - target) // down
    return None


def _walk(statements: tuple[ast.Stmt, ...]) -> Iterable[ast.Stmt]:
    for stmt in statements:
        yield stmt
        if isinstance(stmt, ast.If):
            yield from _walk(stmt.then_body)
            yield from _walk(stmt.else_body)
        elif isinstance(stmt, ast.While):
            yield from _walk(stmt.body)


# ------------------------------------------------------------------ consumers


def planned_bound(bound: LoopBound, unwind: int) -> Optional[tuple[int, bool]]:
    """The unwind plan one loop verdict supports, or ``None``.

    ``(iterations, proven)`` — ``proven`` means the unrolling covers every
    execution and the CBMC-style unwinding assumption can be dropped.  At
    least one unrolling is always kept so the guard and body contribute
    the same clause-group universe planned or flat (the differential
    discipline compares candidate line sets across the two encodings).
    """
    if bound.verdict not in (EXACT, BOUNDED) or bound.hi is None:
        return None
    if bound.hi > max(unwind, PLANNED_UNWIND_CAP):
        return None
    return max(1, bound.hi), True


def plan_unwinds(
    loop_bounds: Mapping[tuple[str, int], LoopBound], unwind: int
) -> dict[tuple[str, int], tuple[int, bool]]:
    """Per-loop unwind plans keyed by ``(function, guard line)``."""
    plans: dict[tuple[str, int], tuple[int, bool]] = {}
    for key, bound in loop_bounds.items():
        plan = planned_bound(bound, unwind)
        if plan is not None:
            plans[key] = plan
    return plans


def effective_unwind(bound: LoopBound, unwind: int, unwind_planning: bool) -> int:
    """Unrollings the encoder will actually perform for this loop."""
    if unwind_planning:
        plan = planned_bound(bound, unwind)
        if plan is not None:
            return plan[0]
    return unwind


def lint_loops(
    loop_bounds: Iterable[LoopBound], unwind: int = 16, unwind_planning: bool = False
) -> list[Diagnostic]:
    """Diagnostics derived from the verdicts under given encoding options.

    ``unwind-insufficient`` is an ERROR: when the proven minimum trip
    count exceeds what the encoder unrolls, the unwinding assumption
    contradicts a proven fact and the trace formula is over-constrained —
    localization over it would be garbage, so the program is rejected
    rather than silently mis-localized.
    """
    diagnostics: list[Diagnostic] = []
    for bound in loop_bounds:
        if bound.guard_always_false:
            diagnostics.append(
                Diagnostic(
                    line=bound.line,
                    severity=WARNING,
                    code="constant-false-guard",
                    message="loop guard is always false; the body never executes",
                    function=bound.function,
                )
            )
            continue
        if bound.verdict == INFINITE:
            diagnostics.append(
                Diagnostic(
                    line=bound.line,
                    severity=WARNING,
                    code="nonterminating-loop",
                    message="loop guard is always true and the body cannot exit",
                    function=bound.function,
                )
            )
            continue
        if bound.verdict in (EXACT, BOUNDED) and bound.lo > 0:
            effective = effective_unwind(bound, unwind, unwind_planning)
            if bound.lo > effective:
                need = (
                    f"exactly {bound.lo}"
                    if bound.verdict == EXACT and bound.lo == bound.hi
                    else f"at least {bound.lo}"
                )
                diagnostics.append(
                    Diagnostic(
                        line=bound.line,
                        severity=ERROR,
                        code="unwind-insufficient",
                        message=(
                            f"loop runs {need} iterations but only {effective}"
                            " are unrolled; raise unwind or enable"
                            " unwind_planning"
                        ),
                        function=bound.function,
                    )
                )
    return diagnostics


__all__ = [
    "BOUNDED",
    "EXACT",
    "INFINITE",
    "PLANNED_UNWIND_CAP",
    "UNKNOWN",
    "LoopBound",
    "effective_unwind",
    "infer_loop_bounds",
    "lint_loops",
    "plan_unwinds",
    "planned_bound",
]
