"""Correctness specifications.

The paper accepts three forms of specification: "either a post-condition, an
assertion, or a 'golden output'" (Section 1).  A :class:`Specification`
value tells the concolic tracer and the localizer which of these to enforce
as the hard post-condition of the extended trace formula:

* ``assertion`` — the program contains ``assert`` statements; a failing run
  is one that violates some assertion, and the violated condition is
  asserted to *hold* in the trace formula.
* ``golden_output`` — the observable output of the run (values passed to
  ``print_int`` plus the return value of the entry function) must equal a
  given tuple; used for the Siemens benchmarks, where the original program's
  output on each test is the specification for the faulty versions.
* ``return_value`` — shorthand for a golden output consisting of only the
  entry function's return value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class Specification:
    """What it means for a run to be correct."""

    kind: str  # "assertion" | "golden-output" | "return-value"
    expected: tuple[int, ...] = ()

    @classmethod
    def assertion(cls) -> "Specification":
        """The program's own assert statements are the specification."""
        return cls(kind="assertion")

    @classmethod
    def golden_output(cls, values: Sequence[int]) -> "Specification":
        """The observable output must equal ``values``."""
        return cls(kind="golden-output", expected=tuple(int(v) for v in values))

    @classmethod
    def return_value(cls, value: int) -> "Specification":
        """The entry function must return ``value``."""
        return cls(kind="return-value", expected=(int(value),))

    def describe(self) -> str:
        if self.kind == "assertion":
            return "program assertions hold"
        if self.kind == "return-value":
            return f"return value == {self.expected[0]}"
        return f"observable output == {list(self.expected)}"

    def is_satisfied_by(self, observable: Sequence[int], assertion_failed: bool) -> bool:
        """Check a concrete run against this specification."""
        if self.kind == "assertion":
            return not assertion_failed
        if assertion_failed:
            return False
        if self.kind == "return-value":
            return len(observable) >= 1 and observable[-1] == self.expected[0]
        return tuple(observable) == self.expected
