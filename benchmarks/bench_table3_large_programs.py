"""Table 3: BugAssist on the larger Siemens-style programs with trace reduction.

Each row reports the size of the dynamic error trace and of the MaxSAT
instance before and after applying the benchmark's designated reduction
technique (S = slicing, C = concolic simulation, D = delta debugging), the
number of reported fault locations, and the run time.
"""

from __future__ import annotations

import pytest

from repro.siemens.programs import LARGE_BENCHMARKS
from repro.siemens.suite import run_large_benchmark

_rows = {}


@pytest.mark.parametrize("benchmark_case", LARGE_BENCHMARKS, ids=lambda b: b.name)
def test_table3_row(benchmark, benchmark_case):
    def run():
        return run_large_benchmark(benchmark_case)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows[benchmark_case.name] = row
    # The reduction must never grow the instance and the localizer must
    # report a small candidate set.
    assert row.clauses_after <= row.clauses_before
    assert row.variables_after <= row.variables_before
    assert 1 <= row.fault_candidates <= 25


def test_table3_report():
    if not _rows:
        pytest.skip("no Table 3 rows were collected")
    print()
    print("Table 3 — larger benchmarks with trace reduction")
    print(f"{'Program':14} {'Reduc':5} {'LOC':>4} {'Proc#':>5} "
          f"{'assign# (before/after)':>23} {'var# (before/after)':>21} "
          f"{'clause# (before/after)':>23} {'Fault#':>6} {'time(s)':>8}")
    for name, row in _rows.items():
        print(f"{name:14} {row.reduction:5} {row.loc:>4} {row.procedures:>5} "
              f"{row.assignments_before:>11}/{row.assignments_after:<11} "
              f"{row.variables_before:>10}/{row.variables_after:<10} "
              f"{row.clauses_before:>11}/{row.clauses_after:<11} "
              f"{row.fault_candidates:>6} {row.time_seconds:>8.2f}")
    # At least the slicing- and concolic-reduced programs shrink noticeably.
    shrunk = [
        row for row in _rows.values() if row.clauses_after < row.clauses_before
    ]
    assert len(shrunk) >= 2
