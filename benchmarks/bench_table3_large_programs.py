"""Table 3: BugAssist on the larger Siemens-style programs with trace reduction.

Each row reports the size of the dynamic error trace and of the MaxSAT
instance before and after applying the benchmark's designated reduction
technique (S = slicing, C = concolic simulation, D = delta debugging), the
number of reported fault locations, and the run time.

Besides the human-readable table, the run writes ``BENCH_table3.json`` at
the repository root — ``{"rows": [...], "metrics": {...}}``, one row per
benchmark with the clause counts, the number of SAT calls and the wall
time, plus the run's :data:`repro.obs.REGISTRY` metrics snapshot
(span-fed encode-phase histograms and solver-effort counters) — so the
performance trajectory can be tracked across PRs.  Each row also carries
*why*-a-row-moved fields:
``propagations_per_second`` (propagation throughput, which reflects whether
the C propagation core or the pure-Python fallback ran),
``conflicts_per_second`` (search-kernel throughput: conflict analysis,
backjumping and VSIDS maintenance), ``gates_shared`` (how many gates the
structure-hashed circuit cache deduplicated while encoding) and
``simplifier`` (the encoder configuration), ``clauses_pruned`` /
``narrowed_vars`` (what the interval-analysis bit narrowing removed from
the reduced trace), plus the active ``propagation_backend`` and
``analysis_backend`` per row.

The incremental-compilation fields track the warm path:
``encode_time_cold`` / ``encode_time_warm`` (a warm number with
``warm_spliced: false`` is the honest decline-check-plus-cold-re-run cost),
``splice_declined_early`` (the decline was a cheap precondition check, not
a paid-for partial replay), and ``impact_fraction``.  The emission-core
fields say *which encoder* produced the row and where its time went:
``encode_backend`` (``"c"`` when the ``REPRO_ENCODE`` core ran, else
``"python"``) and ``encode_phase_analysis`` / ``encode_phase_gates`` /
``encode_phase_materialize`` (interval analysis, the encode walk with gate
emission, and the final clause/journal materialization, in seconds).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.siemens.programs import LARGE_BENCHMARKS
from repro.siemens.suite import run_large_benchmark

_rows = {}

#: Machine-readable benchmark record, written next to ROADMAP.md.
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_table3.json"


@pytest.mark.parametrize("benchmark_case", LARGE_BENCHMARKS, ids=lambda b: b.name)
def test_table3_row(benchmark, benchmark_case):
    def run():
        return run_large_benchmark(benchmark_case)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows[benchmark_case.name] = row
    # The reduction must never grow the instance and the localizer must
    # report a small candidate set.
    assert row.clauses_after <= row.clauses_before
    assert row.variables_after <= row.variables_before
    assert 1 <= row.fault_candidates <= 25


def test_table3_report():
    if not _rows:
        pytest.skip("no Table 3 rows were collected")
    print()
    print("Table 3 — larger benchmarks with trace reduction")
    print(f"{'Program':14} {'Reduc':5} {'LOC':>4} {'Proc#':>5} "
          f"{'assign# (before/after)':>23} {'var# (before/after)':>21} "
          f"{'clause# (before/after)':>23} {'Fault#':>6} {'SAT#':>5} {'time(s)':>8}")
    for name, row in _rows.items():
        print(f"{name:14} {row.reduction:5} {row.loc:>4} {row.procedures:>5} "
              f"{row.assignments_before:>11}/{row.assignments_after:<11} "
              f"{row.variables_before:>10}/{row.variables_after:<10} "
              f"{row.clauses_before:>11}/{row.clauses_after:<11} "
              f"{row.fault_candidates:>6} {row.sat_calls:>5} {row.time_seconds:>8.2f}")
    # At least the slicing- and concolic-reduced programs shrink noticeably.
    shrunk = [
        row for row in _rows.values() if row.clauses_after < row.clauses_before
    ]
    assert len(shrunk) >= 2
    # Only a complete run may replace the cross-PR record; a -k subset must
    # not overwrite it with partial rows.
    if len(_rows) == len(LARGE_BENCHMARKS):
        _write_bench_json()


def test_journaling_off_encode_is_not_slower():
    """Micro-assert: with no journal consumer attached, ``record`` is
    zero-cost — the journal-less encode of a Table 3 program is never
    slower than the journaled one, and leaves the journal stream untouched.
    """
    from repro.bmc import BoundedModelChecker
    from repro.encoding.arena import HDR_JLEN

    case = next(b for b in LARGE_BENCHMARKS if b.name == "schedule")
    program = case.faulty_program()

    def best_encode_seconds(journal: bool) -> float:
        best = float("inf")
        for _ in range(3):
            checker = BoundedModelChecker(program, group_statements=True)
            started = time.perf_counter()
            checker._encode("main", journal=journal)
            best = min(best, time.perf_counter() - started)
            if not journal:
                assert checker._context.arena.hdr[HDR_JLEN] == 0
                assert checker._context.journal is None
        return best

    off = best_encode_seconds(False)
    on = best_encode_seconds(True)
    # Journaling-off is measurably faster; the slack absorbs timer noise.
    assert off <= on * 1.15, (off, on)


def test_disabled_tracing_overhead_is_negligible():
    """Micro-assert: with ``REPRO_TRACE=off`` a span is a bare timer.

    Measures the per-span cost of the disabled fast path directly and
    bounds it against a real encode: the spans a request opens must cost
    ≤3% of the request's wall time.  In practice the ratio is orders of
    magnitude below the bound; the assert exists so a regression that puts
    work on the disabled path (registry lookups, dict builds, env reads)
    fails loudly.
    """
    import os

    from repro import obs
    from repro.bmc import BoundedModelChecker

    assert os.environ.get("REPRO_TRACE", "off") in ("", "off"), (
        "micro-assert must run with tracing off"
    )
    assert obs.current_context() is None

    # Per-disabled-span cost, amortized over a tight loop.
    iterations = 10_000
    started = time.perf_counter()
    for _ in range(iterations):
        with obs.span("bench.noop"):
            pass
    per_span = (time.perf_counter() - started) / iterations

    # A real request, tracing off, best of 3 (same shape as the journal-off
    # check above).
    case = next(b for b in LARGE_BENCHMARKS if b.name == "schedule")
    program = case.faulty_program()
    request_time = float("inf")
    spans_per_request = None
    for _ in range(3):
        checker = BoundedModelChecker(program, group_statements=True)
        run_started = time.perf_counter()
        checker.compile_program("main")
        request_time = min(request_time, time.perf_counter() - run_started)
    # Count the spans the same request opens when tracing is on.
    os.environ["REPRO_TRACE"] = "on"
    try:
        with obs.trace("bench.count") as handle:
            BoundedModelChecker(program, group_statements=True).compile_program(
                "main"
            )
        spans_per_request = len(handle.spans())
    finally:
        os.environ.pop("REPRO_TRACE", None)
    assert spans_per_request >= 4  # root + compile + the encode phases
    overhead = (spans_per_request * per_span) / request_time
    assert overhead <= 0.03, (overhead, per_span, spans_per_request, request_time)


def _write_bench_json() -> None:
    from repro.obs import REGISTRY
    from repro.sat import propagation_backend, search_backend

    rows = [
        {
            "name": row.name,
            "reduction": row.reduction,
            "clauses_before": row.clauses_before,
            "clauses_after": row.clauses_after,
            "variables_before": row.variables_before,
            "variables_after": row.variables_after,
            "fault_candidates": row.fault_candidates,
            "maxsat_calls": row.maxsat_calls,
            "sat_calls": row.sat_calls,
            "time_seconds": round(row.time_seconds, 3),
            "propagations_per_second": round(row.propagations_per_second),
            "conflicts_per_second": round(row.conflicts_per_second),
            "gates_shared": row.gates_shared,
            "simplifier": row.simplifier,
            "clauses_pruned": row.clauses_pruned,
            "narrowed_vars": row.narrowed_vars,
            "unwind_pruned_clauses": row.unwind_pruned_clauses,
            "planned_loops": row.planned_loops,
            "encode_time_cold": round(row.encode_time_cold, 4),
            "encode_time_warm": round(row.encode_time_warm, 4),
            "warm_spliced": row.warm_spliced,
            "splice_declined_early": row.splice_declined_early,
            "impact_fraction": round(row.impact_fraction, 4),
            "encode_backend": row.encode_backend,
            **{
                f"encode_phase_{phase}": seconds
                for phase, seconds in row.encode_phases.items()
            },
            "propagation_backend": propagation_backend(),
            "analysis_backend": search_backend(),
        }
        for row in _rows.values()
    ]
    # The run's metrics registry snapshot replaces hand-rolled timing
    # aggregation: solver-effort counters and the span-fed phase histograms
    # accumulated while the rows above ran.
    payload = {"rows": rows, "metrics": REGISTRY.snapshot()}
    BENCH_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
