"""Section 6.4 (Program 3): finding the faulty loop iteration."""

from __future__ import annotations

from repro.core import LoopIterationLocalizer, Specification
from repro.lang import parse_program

SQUAREROOT = """\
int squareroot(int val) {
    int i = 1;
    int v = 0;
    int res = 0;
    while (v < val) {
        v = v + 2 * i + 1;
        i = i + 1;
    }
    res = i;
    assert(res * res <= val && (res + 1) * (res + 1) > val);
    return res;
}
int main(int val) { assume(val > 0); return squareroot(val); }
"""


def test_loop_iteration_localization(benchmark):
    program = parse_program(SQUAREROOT, name="squareroot")
    localizer = LoopIterationLocalizer(program)

    def run():
        return localizer.localize([50], Specification.assertion())

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Section 6.4 — faulty loop iteration (squareroot, val = 50)")
    print(f"loop guard evaluations (eta): {report.eta}")
    print(f"candidate lines: {report.lines}")
    for line in sorted(report.iteration_candidates):
        print(f"  line {line}: iterations {sorted(set(report.iteration_candidates[line]))}")
    # The post-loop assignment (the paper's intended fix) is reported, and the
    # loop statements carry iteration information up to the 8th guard check.
    assert 9 in report.lines
    assert report.eta == 8
    assert report.iteration_candidates
    assert max(max(v) for v in report.iteration_candidates.values()) <= 8
