"""Figure 2: the TCAS v2 walkthrough — which lines explain the wrong advisory.

The paper's Figure 2 shows version v2 (constant 300 instead of 100 in
Inhibit_Biased_Climb) with all reported bug locations underlined; the actual
fault is reported in every run together with the call chain that propagates
it (the descend predicate, the advisory assignment, and the final return).
"""

from __future__ import annotations

import pytest

from repro.core import BugAssistLocalizer, Specification
from repro.siemens import classify_tcas_tests, tcas_fault, tcas_faulty_program
from repro.siemens.suite import TCAS_HARNESS_LINES


def test_fig2_v2_localization(benchmark):
    version = "v2"
    fault = tcas_fault(version)
    program = tcas_faulty_program(version)
    failing, _ = classify_tcas_tests(version, count=600)
    assert failing, "v2 must have failing tests in the pool"
    vector, expected = failing[0]
    localizer = BugAssistLocalizer(
        program, mode="program", hard_lines=TCAS_HARNESS_LINES
    )

    def run():
        return localizer.localize_test(
            vector.as_list(), Specification.return_value(expected)
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"Figure 2 — TCAS {version} ({fault.description})")
    print(f"failing test: {vector.as_dict()}")
    print(f"expected advisory: {expected}")
    print(report.summary())
    # The actual fault (the constant in Inhibit_Biased_Climb) is reported.
    assert report.contains_line(28)
    # The descend predicate / advisory propagation chain shows up as well,
    # mirroring the underlined lines of Figure 2.
    propagation_lines = {50, 51, 52, 54, 56, 71, 78, 79, 86, 102}
    assert set(report.lines) & propagation_lines
    # Nothing from the untouched climb predicate's then-branch context that
    # the paper singles out as *not* reported.
    assert not report.contains_line(41)
