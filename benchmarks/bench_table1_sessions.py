"""Table 1 with the session API: compile once, localize many failing tests.

For every selected TCAS version the harness localizes (a sample of) the
failing tests twice:

* **session** — one :class:`~repro.core.session.LocalizationSession`
  compiles the whole-program encoding once and runs every failing test
  against the persistent MaxSAT engine (solver push/pop between tests);
* **baseline** — the pre-session per-test protocol: a fresh
  whole-program encoding, WCNF and engine per failing test (what
  ``BugAssistPipeline.localize_many`` did before the session API).

Both sides examine the top ``MAX_CANDIDATES`` CoMSSes per failing test and
must report identical line sets per test.  Besides the printed table the
run writes ``BENCH_table1.json`` at the repository root — per-version wall
times for the serial and process-pool session paths, the baseline, the
number of whole-program encodings built, and the SAT-call counts — so the
session speedup can be tracked across PRs.

Run with ``pytest benchmarks/bench_table1_sessions.py --runslow`` or
directly with ``python benchmarks/bench_table1_sessions.py``.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import pytest

from conftest import tcas_pool_size, tcas_versions_under_test
from repro.core import BugAssistLocalizer, LocalizationSession, Specification
from repro.siemens.suite import TCAS_HARNESS_LINES, classify_tcas_tests
from repro.siemens.tcas import tcas_faulty_program

#: Machine-readable benchmark record, written next to ROADMAP.md.
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_table1.json"

#: CoMSSes examined per failing test (both paths).  The fault line of a
#: detectable version appears within the first few correction sets; this is
#: the working set a developer actually inspects per test.
MAX_CANDIDATES = 3

#: Failing tests localized per version (the paper localizes all of them;
#: twelve keeps the benchmark minutes-scale on a pure-Python SAT stack).
MAX_TESTS = int(os.environ.get("BUGASSIST_SESSION_TESTS", "12"))


def run_version(version: str, test_count: int, max_tests: int) -> dict:
    """One Table 1 row: session (serial + process pool) vs per-test baseline."""
    failing, _ = classify_tcas_tests(version, count=test_count)
    selected = failing[:max_tests]
    tests = [
        (vector.as_list(), Specification.return_value(expected))
        for vector, expected in selected
    ]
    program = tcas_faulty_program(version)

    session = LocalizationSession(
        program, hard_lines=TCAS_HARNESS_LINES, max_candidates=MAX_CANDIDATES
    )
    started = time.perf_counter()
    with session:
        serial_reports = [session.localize(test, spec) for test, spec in tests]
    session_serial = time.perf_counter() - started

    workers = os.cpu_count() or 1
    pool_session = LocalizationSession(
        program, hard_lines=TCAS_HARNESS_LINES, max_candidates=MAX_CANDIDATES
    )
    started = time.perf_counter()
    with pool_session:
        ranked = pool_session.localize_batch(
            tests, executor="process", workers=workers
        )
    session_process = time.perf_counter() - started

    localizer = BugAssistLocalizer(
        program,
        mode="program",
        hard_lines=TCAS_HARNESS_LINES,
        max_candidates=MAX_CANDIDATES,
    )
    started = time.perf_counter()
    baseline_reports = [
        localizer.localize_test(test, spec) for test, spec in tests
    ]
    baseline = time.perf_counter() - started

    lines_equal = all(
        set(s.lines) == set(b.lines)
        for s, b in zip(serial_reports, baseline_reports)
    ) and all(
        set(p.lines) == set(b.lines)
        for p, b in zip(ranked.runs, baseline_reports)
    )
    return {
        "version": version,
        "failing_tests": len(failing),
        "localized_tests": len(tests),
        "max_candidates": MAX_CANDIDATES,
        "session_serial_seconds": round(session_serial, 3),
        "session_process_seconds": round(session_process, 3),
        "process_workers": workers,
        "baseline_seconds": round(baseline, 3),
        "serial_speedup": round(baseline / session_serial, 2) if session_serial else 0.0,
        "encodings_built_session": session.stats.encodings_built,
        "encodings_built_baseline": len(tests),  # one rebuild per test
        "sat_calls_session": session.stats.sat_calls,
        "sat_calls_baseline": sum(r.sat_calls for r in baseline_reports),
        "lines_equal": lines_equal,
    }


def run_benchmark(versions=None, test_count=None, max_tests=MAX_TESTS) -> list[dict]:
    versions = versions or tcas_versions_under_test()
    test_count = test_count or tcas_pool_size()
    rows = [run_version(version, test_count, max_tests) for version in versions]
    _print_table(rows)
    _write_bench_json(rows)
    return rows


def _print_table(rows: list[dict]) -> None:
    print()
    print("Table 1 (session API) — compile once, localize many")
    print(f"{'Ver':>4} {'TC#':>5} {'Run#':>4} {'Sess(s)':>8} {'Pool(s)':>8} "
          f"{'Base(s)':>8} {'Speedup':>7} {'Enc#':>4} {'Equal':>5}")
    for row in rows:
        print(f"{row['version']:>4} {row['failing_tests']:>5} "
              f"{row['localized_tests']:>4} {row['session_serial_seconds']:>8.2f} "
              f"{row['session_process_seconds']:>8.2f} {row['baseline_seconds']:>8.2f} "
              f"{row['serial_speedup']:>6.2f}x {row['encodings_built_session']:>4} "
              f"{str(row['lines_equal']):>5}")
    total_session = sum(row["session_serial_seconds"] for row in rows)
    total_baseline = sum(row["baseline_seconds"] for row in rows)
    speedup = total_baseline / total_session if total_session else 0.0
    print(f"serial aggregate: session {total_session:.2f}s vs per-test baseline "
          f"{total_baseline:.2f}s ({speedup:.2f}x)")


def _write_bench_json(rows: list[dict]) -> None:
    total_session = sum(row["session_serial_seconds"] for row in rows)
    total_baseline = sum(row["baseline_seconds"] for row in rows)
    payload = {
        "protocol": {
            "max_candidates": MAX_CANDIDATES,
            "max_tests_per_version": MAX_TESTS,
            "test_pool": tcas_pool_size(),
        },
        "aggregate": {
            "session_serial_seconds": round(total_session, 3),
            "baseline_seconds": round(total_baseline, 3),
            "serial_speedup": round(total_baseline / total_session, 2)
            if total_session
            else 0.0,
        },
        "versions": rows,
    }
    BENCH_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.mark.slow
def test_table1_sessions():
    """Session batch localization: one encoding, same candidates, faster."""
    rows = run_benchmark()
    for row in rows:
        # Compile-once contract: the whole-program encoding is built exactly
        # once per session (and once per worker in the process pool).
        assert row["encodings_built_session"] == 1
        # The session must report the same line sets as the per-test baseline.
        assert row["lines_equal"]
    total_session = sum(row["session_serial_seconds"] for row in rows)
    total_baseline = sum(row["baseline_seconds"] for row in rows)
    assert total_session < total_baseline


if __name__ == "__main__":
    run_benchmark()
