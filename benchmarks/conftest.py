"""Shared configuration for the benchmark harness.

Environment variables scale the experiments:

* ``BUGASSIST_TCAS_VERSIONS`` — comma-separated TCAS versions for Table 1
  (default: a representative subset; ``all`` runs every version as in the
  paper).
* ``BUGASSIST_TCAS_TESTS`` — size of the TCAS test pool (default 600; the
  paper uses 1600).
* ``BUGASSIST_TESTS_PER_VERSION`` — failing tests localized per version
  (default 2; ``all`` reproduces the full 1440-run protocol).
"""

from __future__ import annotations

import os


def tcas_versions_under_test() -> list[str]:
    from repro.siemens import tcas_versions

    value = os.environ.get("BUGASSIST_TCAS_VERSIONS", "")
    if value.strip().lower() == "all":
        return tcas_versions()
    if value.strip():
        return [version.strip() for version in value.split(",") if version.strip()]
    return ["v1", "v2", "v13", "v16", "v22", "v28", "v37", "v40", "v41"]


def tcas_pool_size() -> int:
    return int(os.environ.get("BUGASSIST_TCAS_TESTS", "600"))


def tests_per_version() -> int | None:
    value = os.environ.get("BUGASSIST_TESTS_PER_VERSION", "2")
    if value.strip().lower() == "all":
        return None
    return int(value)
