"""Shared configuration for the benchmark harness.

Environment variables scale the experiments:

* ``BUGASSIST_TCAS_VERSIONS`` — comma-separated TCAS versions for Table 1
  (default: a representative subset; ``all`` runs every version as in the
  paper).
* ``BUGASSIST_TCAS_TESTS`` — size of the TCAS test pool (default 600; the
  paper uses 1600).
* ``BUGASSIST_TESTS_PER_VERSION`` — failing tests localized per version
  (default 2; ``all`` reproduces the full 1440-run protocol).
"""

from __future__ import annotations

import os

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    # Same gate as tests/conftest.py; guarded because pytest rejects a
    # duplicate registration when both conftests load (e.g. ``pytest . ``).
    try:
        parser.addoption(
            "--runslow",
            action="store_true",
            default=False,
            help="also run benchmarks marked slow (full protocol runs)",
        )
    except ValueError:
        pass


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers", "slow: slow benchmark-scale test; needs --runslow to run"
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow benchmark test: pass --runslow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


def tcas_versions_under_test() -> list[str]:
    from repro.siemens import tcas_versions

    value = os.environ.get("BUGASSIST_TCAS_VERSIONS", "")
    if value.strip().lower() == "all":
        return tcas_versions()
    if value.strip():
        return [version.strip() for version in value.split(",") if version.strip()]
    return ["v1", "v2", "v13", "v16", "v22", "v28", "v37", "v40", "v41"]


def tcas_pool_size() -> int:
    return int(os.environ.get("BUGASSIST_TCAS_TESTS", "600"))


def tests_per_version() -> int | None:
    value = os.environ.get("BUGASSIST_TESTS_PER_VERSION", "2")
    if value.strip().lower() == "all":
        return None
    return int(value)
