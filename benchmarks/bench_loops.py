"""Loop-bound planning benchmark: clauses and times, flat vs planned unwinding.

Every program in the seeded-fault loop corpus
(:mod:`repro.siemens.loop_corpus`) is compiled at several unwind depths,
twice per depth — once with the flat global bound, once with per-loop
unwind planning (:mod:`repro.analysis.loops`) — and localized on its
recorded failing test.  Rows report clause counts, the clauses planning
pruned, encode and solve wall times, and the candidate line sets of both
configurations (with an explicit ``lines_equal`` flag: dropping a proven
loop's unwinding assumption can legitimately shrink the relaxation space,
so corpus-level equality is reported, not asserted — the hard differential
gate lives in ``tests/test_loops.py::TestTable3Differential``).

Besides the printed table the run writes ``BENCH_loops.json`` at the
repository root so the clause/time trajectory is tracked across PRs.

Run with ``pytest benchmarks/bench_loops.py --runslow``, directly with
``python benchmarks/bench_loops.py``, or as the CI smoke with
``python benchmarks/bench_loops.py --smoke`` (fewer depths, localization
capped to small instances).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import pytest

from repro.bmc import BoundedModelChecker
from repro.core import LocalizationSession
from repro.siemens.loop_corpus import LOOP_BENCHMARKS

#: Machine-readable benchmark record, written next to ROADMAP.md.
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_loops.json"

FULL_PROTOCOL = {"unwinds": [8, 16, 32], "localize_clause_cap": 120_000}
SMOKE_PROTOCOL = {"unwinds": [8, 16], "localize_clause_cap": 60_000}


def _compile(program, unwind: int, planning: bool):
    started = time.perf_counter()
    compiled = BoundedModelChecker(
        program,
        unwind=unwind,
        group_statements=True,
        unwind_planning=planning,
    ).compile_program()
    return compiled, time.perf_counter() - started


def _localize(bench, compiled):
    started = time.perf_counter()
    with LocalizationSession.from_compiled(compiled) as session:
        report = session.localize(list(bench.failing_test), bench.specification())
    return report, time.perf_counter() - started


def run_benchmark(protocol: dict = FULL_PROTOCOL) -> dict:
    rows = []
    for bench in LOOP_BENCHMARKS:
        program = bench.program()
        for unwind in protocol["unwinds"]:
            flat, encode_flat = _compile(program, unwind, planning=False)
            planned, encode_planned = _compile(program, unwind, planning=True)
            row = {
                "name": bench.name,
                "unwind": unwind,
                "clauses_flat": flat.num_clauses,
                "clauses_planned": planned.num_clauses,
                "unwind_pruned_clauses": flat.num_clauses - planned.num_clauses,
                "reduction_percent": round(
                    100.0 * (1 - planned.num_clauses / flat.num_clauses), 1
                ),
                "planned_loops": planned.planned_loops,
                "truncated_flat": bool(flat.truncated_loops),
                "encode_s_flat": round(encode_flat, 4),
                "encode_s_planned": round(encode_planned, 4),
            }
            if flat.num_clauses <= protocol["localize_clause_cap"]:
                report_flat, solve_flat = _localize(bench, flat)
                report_planned, solve_planned = _localize(bench, planned)
                row.update(
                    solve_s_flat=round(solve_flat, 4),
                    solve_s_planned=round(solve_planned, 4),
                    lines_flat=sorted(report_flat.lines),
                    lines_planned=sorted(report_planned.lines),
                    lines_equal=set(report_flat.lines) == set(report_planned.lines),
                    fault_detected_flat=any(
                        line in bench.fault_lines for line in report_flat.lines
                    ),
                    fault_detected=any(
                        line in bench.fault_lines for line in report_planned.lines
                    ),
                )
            rows.append(row)
    payload = {
        "protocol": protocol,
        "rows": rows,
        "best_reduction_percent": max(r["reduction_percent"] for r in rows),
    }
    BENCH_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    _print_table(payload)
    return payload


def _print_table(payload: dict) -> None:
    print()
    print("Loop-bound planning — clauses and times, flat vs planned")
    print(
        f"{'program':14} {'unwind':>6} {'flat':>8} {'planned':>8} {'pruned':>7} "
        f"{'red%':>5} {'enc-f(s)':>8} {'enc-p(s)':>8} {'sol-f(s)':>8} {'sol-p(s)':>8} {'lines=':>6}"
    )
    for row in payload["rows"]:
        print(
            f"{row['name']:14} {row['unwind']:>6} {row['clauses_flat']:>8} "
            f"{row['clauses_planned']:>8} {row['unwind_pruned_clauses']:>7} "
            f"{row['reduction_percent']:>5} {row['encode_s_flat']:>8} "
            f"{row['encode_s_planned']:>8} "
            f"{row.get('solve_s_flat', '-'):>8} {row.get('solve_s_planned', '-'):>8} "
            f"{str(row.get('lines_equal', '-')):>6}"
        )
    print(f"best clause reduction: {payload['best_reduction_percent']}%")


@pytest.mark.slow
def test_loop_planning_benchmark():
    """Planning prunes real clauses and no seeded fault goes dark.

    Where the two candidate sets agree (``lines_equal``) the planned run
    must keep the fault; where they diverge, each side can legitimately
    miss it in its own way — countdown's repair (a smaller induction
    step) needs 5 iterations against the faulty program's proven bound of
    4, so it is unrepresentable once the unwinding assumption is dropped,
    while nested_total's inner-guard fault hides from the *flat* run
    among the 16 unrolled copies but surfaces under the exact 4-iteration
    plan.  Every fault must be caught by at least one configuration.
    """
    payload = run_benchmark(SMOKE_PROTOCOL)
    # The acceptance floor: at least one corpus program sheds >=30% of its
    # clauses under planning at some measured depth.
    assert payload["best_reduction_percent"] >= 30.0
    localized = [row for row in payload["rows"] if "fault_detected" in row]
    assert localized
    assert all(
        row["fault_detected"] or row["fault_detected_flat"] for row in localized
    )
    assert all(
        row["fault_detected"] for row in localized if row["lines_equal"]
    )
    # Planning must never make an encoding larger.
    assert all(row["unwind_pruned_clauses"] >= 0 for row in payload["rows"])


if __name__ == "__main__":
    protocol = SMOKE_PROTOCOL if "--smoke" in sys.argv else FULL_PROTOCOL
    result = run_benchmark(protocol)
    sys.exit(0 if result["best_reduction_percent"] >= 30.0 else 1)
