"""Golden-lint gate: ``python -m repro.analysis`` over the Siemens corpus.

Writes every corpus program (the TCAS reference, all seeded-fault TCAS
versions, the four Table 3 programs with their injected faults, and the
strncat example) to a scratch directory, lints the whole set through the
real CLI in one invocation, and compares the JSON diagnostics against the
checked-in golden file ``tests/golden_siemens_lint.json``.

The corpus is all *working* benchmark programs — seeded faults are wrong
answers, not crashes — so the golden expectation doubles as a
false-positive regression gate: the analyzer must never start rejecting
(or newly flagging) a program the localizer is expected to handle.

Usage::

    python benchmarks/lint_siemens_corpus.py            # check against golden
    python benchmarks/lint_siemens_corpus.py --update   # regenerate golden
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
GOLDEN_PATH = REPO / "tests" / "golden_siemens_lint.json"


def corpus_sources() -> dict[str, str]:
    """Every Siemens-corpus program as ``{file name: source text}``."""
    from repro.siemens import TCAS_SOURCE, tcas_faulty_source, tcas_versions
    from repro.siemens.programs import LARGE_BENCHMARKS
    from repro.siemens.strncat_example import STRNCAT_SOURCE

    sources = {"tcas_reference.mc": TCAS_SOURCE}
    for version in tcas_versions():
        sources[f"tcas_{version}.mc"] = tcas_faulty_source(version)
    for benchmark in LARGE_BENCHMARKS:
        lines = list(benchmark.source_lines)
        for line_number, replacement in benchmark.patches:
            lines[line_number - 1] = replacement
        sources[f"{benchmark.name}.mc"] = "\n".join(lines) + "\n"
    sources["strncat.mc"] = STRNCAT_SOURCE
    # The example programs ride along so the golden file also pins expected
    # *positives* (the corpus itself must lint clean — wrong answers, not
    # lintable defects — which alone would only gate false positives).
    for example in sorted((REPO / "examples").glob("*.mc")):
        sources[f"example_{example.name}"] = example.read_text()
    return sources


def lint_corpus() -> dict[str, list[dict]]:
    """Run the CLI over the corpus; ``{file name: wire diagnostics}``."""
    sources = corpus_sources()
    with tempfile.TemporaryDirectory(prefix="repro-lint-") as scratch:
        root = Path(scratch)
        names = sorted(sources)
        for name in names:
            (root / name).write_text(sources[name])
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--json", *names],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(root),
        )
    if completed.returncode not in (0, 1):
        raise RuntimeError(f"linter crashed: {completed.stderr}")
    payload = json.loads(completed.stdout)
    return {entry["file"]: entry["diagnostics"] for entry in payload}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true", help="rewrite the golden file"
    )
    args = parser.parse_args(argv)

    actual = lint_corpus()
    rendered = json.dumps(actual, indent=2, sort_keys=True) + "\n"
    if args.update:
        GOLDEN_PATH.write_text(rendered)
        total = sum(len(diags) for diags in actual.values())
        print(f"wrote {GOLDEN_PATH} ({len(actual)} programs, {total} diagnostics)")
        return 0

    if not GOLDEN_PATH.exists():
        print(f"missing golden file {GOLDEN_PATH}; run with --update", file=sys.stderr)
        return 2
    expected = json.loads(GOLDEN_PATH.read_text())
    if expected == actual:
        print(f"golden lint: {len(actual)} corpus programs match")
        return 0
    for name in sorted(set(expected) | set(actual)):
        want = expected.get(name)
        got = actual.get(name)
        if want != got:
            print(f"MISMATCH {name}:", file=sys.stderr)
            print(f"  expected: {json.dumps(want)}", file=sys.stderr)
            print(f"  actual:   {json.dumps(got)}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.path.insert(0, str(REPO / "src"))
    raise SystemExit(main())
