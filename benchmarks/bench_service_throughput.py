"""Serving-layer throughput: the daemon vs the serial session path.

The workload is the 9-version TCAS top-3 protocol reshaped as service
traffic: several client passes each replay the same handful of failing
tests against every faulty version (exactly what CI reruns and multiple
developers do until a bug is fixed — many requests, few programs).

Two ways to serve it:

* **daemon** — one ``python -m repro.serve`` process (content-addressed
  artifact store, warm-session workers, result cache); every localization
  is an individual ``localize`` request over TCP, so the latency
  distribution is per-request and honest.
* **serial session path** — what each client does without the daemon: per
  pass and per version, open a :class:`~repro.core.session.LocalizationSession`
  (compile + engine load), localize the version's tests, close.  No state
  survives between passes because independent client processes cannot
  share sessions — that is precisely the gap the daemon closes.

Besides the printed table the run writes ``BENCH_service.json`` at the
repository root: requests/sec for both paths, artifact-cache hit rate,
compiles performed (must equal the version count — the compile-exactly-once
contract), p50/p95 request latency (computed by the
:class:`repro.obs.Histogram` the daemon's own metrics use), and the
daemon's metrics-registry snapshot (``daemon.metrics``).  Line sets must
be identical per (version, test) across both paths and all passes.

Run with ``pytest benchmarks/bench_service_throughput.py --runslow``,
directly with ``python benchmarks/bench_service_throughput.py``, or as the
CI smoke with ``python benchmarks/bench_service_throughput.py --smoke``
(two versions, fewer passes, two workers).
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import pytest

from repro.core import LocalizationSession, Specification
from repro.serve import Client
from repro.siemens.suite import TCAS_HARNESS_LINES, service_workload
from repro.siemens.tcas import tcas_faulty_program

#: Machine-readable benchmark record, written next to ROADMAP.md.
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: CoMSSes examined per failing test (the "top-3" of the protocol).
MAX_CANDIDATES = 3

FULL_PROTOCOL = {
    "versions": ["v1", "v2", "v13", "v16", "v22", "v28", "v37", "v40", "v41"],
    "tests_per_version": 4,
    "client_passes": 4,
    "workers": 4,
    "test_pool": 300,
}

SMOKE_PROTOCOL = {
    "versions": ["v1", "v2"],
    "tests_per_version": 3,
    "client_passes": 2,
    "workers": 2,
    "test_pool": 300,
}


def _session_options() -> dict:
    return {
        "hard_lines": list(TCAS_HARNESS_LINES),
        "max_candidates": MAX_CANDIDATES,
    }


def spawn_daemon(workers: int, store_dir: str) -> tuple[subprocess.Popen, tuple[str, int]]:
    """Start ``python -m repro.serve`` and parse its ready line."""
    src_dir = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src_dir}{os.pathsep}{env['PYTHONPATH']}" if env.get(
        "PYTHONPATH"
    ) else str(src_dir)
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            "--tcp",
            "127.0.0.1:0",
            "--workers",
            str(workers),
            "--store-dir",
            store_dir,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    ready = proc.stdout.readline()
    match = re.search(r"tcp=([\d.]+):(\d+)", ready)
    if not match:
        proc.kill()
        raise RuntimeError(f"daemon did not report a TCP address: {ready!r}")
    return proc, (match.group(1), int(match.group(2)))


def run_daemon_path(protocol: dict, workload) -> dict:
    """Replay the workload as individual localize requests against a daemon."""
    from repro.obs import Histogram

    store_dir = tempfile.mkdtemp(prefix="repro-serve-bench-")
    proc, address = spawn_daemon(protocol["workers"], store_dir)
    # Client-observed request latency, in the same fixed-bucket histogram
    # the daemon's own metrics use (replaces hand-rolled sorted-index
    # percentile math).
    latency = Histogram("bench_request_seconds")
    lines: dict[tuple[int, str, int], list[int]] = {}
    try:
        with Client(tcp=address) as client:
            client.wait_until_ready()
            started = time.perf_counter()
            for pass_index in range(protocol["client_passes"]):
                for request in workload:
                    for test_index, (inputs, spec) in enumerate(request.tests):
                        sent = time.perf_counter()
                        reply = client.localize(
                            test=inputs,
                            spec=spec,
                            program=request.source,
                            options={"name": request.name, **_session_options()},
                        )
                        latency.observe(time.perf_counter() - sent)
                        lines[(pass_index, request.version, test_index)] = reply[
                            "report"
                        ]["lines"]
            total = time.perf_counter() - started
            stats = client.stats()
            metrics = client.metrics()
            client.shutdown()
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
    requests = latency.count
    return {
        "total_seconds": round(total, 3),
        "requests": requests,
        "requests_per_second": round(requests / total, 2) if total else 0.0,
        "latency_p50_ms": round(1000 * latency.percentile(50), 2),
        "latency_p95_ms": round(1000 * latency.percentile(95), 2),
        "compiles": stats["store"]["compiles"],
        "artifact_cache": stats["store"],
        "result_cache": stats["result_cache"],
        "pool": {
            key: value
            for key, value in stats["pool"].items()
            if key != "workers"
        },
        # The daemon's own metrics registry snapshot (span-fed request
        # histograms, solver counters, store/cache/pool gauges).
        "metrics": metrics["snapshot"],
        "lines": lines,
    }


def run_serial_path(protocol: dict, workload) -> dict:
    """The no-daemon client behaviour: fresh sessions per pass and version."""
    lines: dict[tuple[int, str, int], list[int]] = {}
    compiles = 0
    requests = 0
    started = time.perf_counter()
    for pass_index in range(protocol["client_passes"]):
        for request in workload:
            program = tcas_faulty_program(request.version)
            with LocalizationSession(
                program,
                hard_lines=TCAS_HARNESS_LINES,
                max_candidates=MAX_CANDIDATES,
            ) as session:
                for test_index, (inputs, spec) in enumerate(request.tests):
                    report = session.localize(inputs, spec)
                    requests += 1
                    lines[(pass_index, request.version, test_index)] = report.lines
                compiles += session.stats.encodings_built
    total = time.perf_counter() - started
    return {
        "total_seconds": round(total, 3),
        "requests": requests,
        "requests_per_second": round(requests / total, 2) if total else 0.0,
        "compiles": compiles,
        "lines": lines,
    }


def run_incremental_replay(versions: list[str] | None = None, rounds: int = 3) -> dict:
    """Warm vs cold compile latency across the 9-version TCAS sequence.

    Replays the protocol's version list against one store: each version
    after the first is compiled warm (spliced from its nearest stored
    ancestor) and, for comparison, cold against an empty store.  Timings
    take the best of ``rounds`` runs of the compile function itself, so
    admission and cache bookkeeping stay out of the measurement.  The warm
    artifact's CNF signature must equal the cold one on every version —
    byte-equivalent encodings are the contract, the speedup is the payoff.
    """
    from repro.serve.store import ArtifactStore, normalize_compile_options
    from repro.siemens.tcas import tcas_faulty_source

    versions = list(versions or FULL_PROTOCOL["versions"])
    store = ArtifactStore()
    rows = []
    for version in versions:
        source = tcas_faulty_source(version)
        options = {"name": f"tcas_{version}"}
        normalized = normalize_compile_options(options)
        warm_seconds = []
        warm_compiled = warm_from = None
        for _ in range(rounds):
            started = time.perf_counter()
            warm_compiled, warm_from = store._compile(source, normalized)
            warm_seconds.append(time.perf_counter() - started)
        cold_seconds = []
        cold_compiled = None
        for _ in range(rounds):
            cold_store = ArtifactStore()  # empty: no ancestor to splice
            started = time.perf_counter()
            cold_compiled, _ = cold_store._compile(source, normalized)
            cold_seconds.append(time.perf_counter() - started)
        if warm_compiled.signature != cold_compiled.signature:
            raise AssertionError(f"{version}: warm encode diverged from cold")
        store.get_or_compile(source, options)  # admit as the next ancestor
        rows.append(
            {
                "version": version,
                "cold_ms": round(1000 * min(cold_seconds), 2),
                "warm_ms": round(1000 * min(warm_seconds), 2),
                "spliced": warm_from is not None,
                "impact_fraction": round(warm_compiled.impact_fraction, 4)
                if warm_from is not None
                else None,
            }
        )
    warm_rows = [row for row in rows if row["spliced"]]
    cold_total = sum(row["cold_ms"] for row in warm_rows)
    warm_total = sum(row["warm_ms"] for row in warm_rows)
    return {
        "versions": len(rows),
        "versions_spliced": len(warm_rows),
        "cold_ms_total": round(cold_total, 2),
        "warm_ms_total": round(warm_total, 2),
        "speedup": round(cold_total / warm_total, 2) if warm_total else 0.0,
        "replay": rows,
    }


def run_benchmark(protocol: dict = FULL_PROTOCOL) -> dict:
    workload = service_workload(
        versions=protocol["versions"],
        tests_per_version=protocol["tests_per_version"],
        test_count=protocol["test_pool"],
    )
    daemon = run_daemon_path(protocol, workload)
    serial = run_serial_path(protocol, workload)
    lines_equal = daemon["lines"] == serial["lines"]
    speedup = (
        round(daemon["requests_per_second"] / serial["requests_per_second"], 2)
        if serial["requests_per_second"]
        else 0.0
    )
    payload = {
        "protocol": {**protocol, "max_candidates": MAX_CANDIDATES},
        "daemon": {key: value for key, value in daemon.items() if key != "lines"},
        "serial": {key: value for key, value in serial.items() if key != "lines"},
        "throughput_speedup": speedup,
        "lines_equal": lines_equal,
        # Always measured over the full 9-version sequence, whatever the
        # request protocol above was.
        "incremental": run_incremental_replay(),
    }
    _print_table(payload)
    BENCH_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def _print_table(payload: dict) -> None:
    daemon, serial = payload["daemon"], payload["serial"]
    protocol = payload["protocol"]
    print()
    print(
        f"Service throughput — {len(protocol['versions'])} TCAS versions, "
        f"{protocol['tests_per_version']} tests/version, "
        f"{protocol['client_passes']} client passes, "
        f"{protocol['workers']} workers"
    )
    print(f"{'path':>8} {'req':>5} {'secs':>8} {'req/s':>8} {'p50ms':>7} {'p95ms':>7} {'compiles':>8}")
    print(
        f"{'daemon':>8} {daemon['requests']:>5} {daemon['total_seconds']:>8.2f} "
        f"{daemon['requests_per_second']:>8.2f} {daemon['latency_p50_ms']:>7.1f} "
        f"{daemon['latency_p95_ms']:>7.1f} {daemon['compiles']:>8}"
    )
    print(
        f"{'serial':>8} {serial['requests']:>5} {serial['total_seconds']:>8.2f} "
        f"{serial['requests_per_second']:>8.2f} {'-':>7} {'-':>7} {serial['compiles']:>8}"
    )
    print(
        f"speedup {payload['throughput_speedup']}x, artifact cache hit rate "
        f"{daemon['artifact_cache']['hit_rate']}, result cache hit rate "
        f"{daemon['result_cache']['hit_rate']}, lines_equal={payload['lines_equal']}"
    )
    incremental = payload["incremental"]
    print(
        f"incremental replay: {incremental['versions_spliced']}/"
        f"{incremental['versions'] - 1} follow-up versions spliced, "
        f"cold {incremental['cold_ms_total']}ms vs warm "
        f"{incremental['warm_ms_total']}ms ({incremental['speedup']}x)"
    )


@pytest.mark.slow
def test_service_throughput():
    """Daemon serving: identical line sets, N compiles, ≥2x throughput."""
    payload = run_benchmark()
    # Identical answers on every (pass, version, test) — the serving layer
    # may cache and warm, never change a localization.
    assert payload["lines_equal"]
    # Compile-exactly-once: one compile per distinct version, regardless of
    # client passes and test count (the serial path recompiles every pass).
    assert payload["daemon"]["compiles"] == len(payload["protocol"]["versions"])
    assert payload["serial"]["compiles"] == (
        len(payload["protocol"]["versions"]) * payload["protocol"]["client_passes"]
    )
    # The point of the subsystem: ≥2x throughput over the serial path.
    assert payload["throughput_speedup"] >= 2.0


if __name__ == "__main__":
    protocol = SMOKE_PROTOCOL if "--smoke" in sys.argv else FULL_PROTOCOL
    result = run_benchmark(protocol)
    sys.exit(0 if result["lines_equal"] else 1)
