"""Ablations: MaxSAT strategy and clause grouping (Section 3.3/3.4 design choices).

The paper attributes much of BugAssist's efficiency to (a) the
unsatisfiable-core based MaxSAT solver and (b) grouping all clauses of one
statement behind a single selector variable.  These benchmarks compare the
three engines on the same localization instance and measure how much clause
grouping shrinks the soft-clause set.
"""

from __future__ import annotations

import pytest

from repro.core import BugAssistLocalizer, Specification
from repro.maxsat import WCNF, solve_maxsat
from repro.siemens import classify_tcas_tests, tcas_faulty_program
from repro.siemens.suite import TCAS_HARNESS_LINES


@pytest.fixture(scope="module")
def v13_instance():
    program = tcas_faulty_program("v13")
    failing, _ = classify_tcas_tests("v13", count=600)
    vector, expected = failing[0]
    return program, vector.as_list(), Specification.return_value(expected)


@pytest.mark.parametrize("strategy", ["hitting-set", "msu3", "linear"])
def test_ablation_maxsat_strategy(benchmark, strategy, v13_instance):
    """Same localization instance, different MaxSAT engines — same answer."""
    program, test, spec = v13_instance
    localizer = BugAssistLocalizer(
        program, mode="program", strategy=strategy, hard_lines=TCAS_HARNESS_LINES
    )

    def run():
        return localizer.localize_test(test, spec)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.contains_line(66)  # the injected v13 fault
    print(f"\n[{strategy}] lines={report.lines} maxsat_calls={report.maxsat_calls} "
          f"time={report.time_seconds:.2f}s")


def test_ablation_clause_grouping(benchmark, v13_instance):
    """Clause grouping (Eq. 2) vs one soft clause per CNF clause."""
    program, test, spec = v13_instance
    localizer = BugAssistLocalizer(program, mode="program", hard_lines=TCAS_HARNESS_LINES)
    formula = localizer.build_trace_formula(test, spec)

    grouped, _ = formula.to_wcnf(hard_groups=set(TCAS_HARNESS_LINES))

    def build_ungrouped() -> WCNF:
        wcnf = WCNF()
        wcnf._num_vars = formula.num_vars
        for clause in formula.hard:
            wcnf.add_hard(clause)
        for group, clauses in formula.groups.items():
            for clause in clauses:
                if group.line in TCAS_HARNESS_LINES:
                    wcnf.add_hard(clause)
                else:
                    wcnf.add_soft(clause, label=group)
        return wcnf

    ungrouped = benchmark(build_ungrouped)
    print(f"\nsoft clauses with grouping: {len(grouped.soft)}; "
          f"without grouping: {len(ungrouped.soft)}")
    assert len(grouped.soft) < len(ungrouped.soft) / 5
    # The grouped instance is solvable quickly and still points at program
    # statements; solving the ungrouped instance would enumerate individual
    # CNF clauses instead of statements (and is much larger).
    result = solve_maxsat(grouped)
    assert result.satisfiable
