"""CI smoke for the observability layer (`repro.obs`).

Two checks, in order:

1. **Disabled-tracing overhead** — with ``REPRO_TRACE`` unset a span must
   be a bare timer; the ≤3% micro-assert from the Table 3 benchmark runs
   first, before any tracing is switched on.
2. **Stitched export** — boot the real serving stack (``ServerThread`` +
   worker subprocesses), push one TCAS localization through it with
   ``REPRO_TRACE=export``, and validate the emitted file against the
   Chrome trace-event schema: one ``traceEvents`` document whose spans
   cross the daemon/worker process boundary (≥2 pids) and all chain up to
   the ``serve.localize`` frontend root.

Run as ``python benchmarks/obs_trace_smoke.py`` (CI) or via pytest.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro import obs
from repro.serve import Client, ServerThread
from repro.siemens.suite import TCAS_HARNESS_LINES, service_workload

#: Span names the stitched trace must contain, frontend to solver.
EXPECTED_SPANS = ("serve.localize", "serve.shard", "worker.shard", "session.localize")


def check_disabled_overhead() -> None:
    """Run the ≤3% disabled-span micro-assert (tracing must be off)."""
    assert os.environ.get("REPRO_TRACE", "off") in ("", "off"), (
        "run the smoke with REPRO_TRACE unset; it enables tracing itself"
    )
    from bench_table3_large_programs import (
        test_disabled_tracing_overhead_is_negligible,
    )

    test_disabled_tracing_overhead_is_negligible()
    print("disabled-tracing overhead: within the 3% bound")


def check_stitched_export() -> None:
    """One traced TCAS localization; validate the exported Chrome trace."""
    request = service_workload(versions=["v1"], tests_per_version=1)[0]
    inputs, spec = request.tests[0]
    export_dir = tempfile.mkdtemp(prefix="repro-trace-smoke-")
    os.environ["REPRO_TRACE"] = "export"
    os.environ["REPRO_TRACE_DIR"] = export_dir
    try:
        with ServerThread(workers=2) as daemon:
            with Client(tcp=daemon.tcp_address) as client:
                client.wait_until_ready()
                reply = client.localize(
                    test=inputs,
                    spec=spec,
                    program=request.source,
                    options={
                        "name": f"tcas-{request.version}",
                        "hard_lines": list(TCAS_HARNESS_LINES),
                        "max_candidates": 3,
                    },
                )
    finally:
        os.environ.pop("REPRO_TRACE", None)
        os.environ.pop("REPRO_TRACE_DIR", None)

    assert reply["ok"], reply
    assert reply["report"]["candidates"], "localization reported no candidates"
    trace_path = reply.get("trace_path")
    assert trace_path, "export mode must return the trace file path"

    document = json.loads(Path(trace_path).read_text())
    problems = obs.validate_chrome_trace(document)
    assert problems == [], problems

    events = document["traceEvents"]
    names = {event["name"] for event in events}
    missing = [name for name in EXPECTED_SPANS if name not in names]
    assert not missing, f"stitched trace is missing spans: {missing}"

    pids = {event["pid"] for event in events}
    assert len(pids) >= 2, f"expected daemon + worker pids, got {sorted(pids)}"

    # Every span chains up to the frontend root: one tree, one trace.
    by_id = {event["args"]["span_id"]: event for event in events}
    for event in events:
        current = event
        for _ in range(len(events)):
            parent = current["args"].get("parent_id")
            if parent is None:
                break
            current = by_id[parent]
        assert current["name"] == "serve.localize", event["name"]

    trace_id = document["otherData"]["trace_id"]
    assert reply["trace_id"] == trace_id
    print(
        f"stitched export: {len(events)} spans across {len(pids)} processes, "
        f"trace {trace_id} -> {trace_path}"
    )


def main() -> int:
    check_disabled_overhead()
    check_stitched_export()
    print("obs smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
