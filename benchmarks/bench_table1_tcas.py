"""Table 1: BugAssist on the TCAS versions of the Siemens suite.

For every selected faulty version the harness reports the paper's columns:
TC# (failing tests), Error# (injected errors), Detect# (runs reporting the
true fault line), SizeReduc% and the per-run time.  Scale with the
environment variables documented in ``benchmarks/conftest.py``
(``BUGASSIST_TCAS_VERSIONS=all BUGASSIST_TESTS_PER_VERSION=all`` reproduces
the full protocol).
"""

from __future__ import annotations

import pytest

from conftest import tcas_pool_size, tcas_versions_under_test, tests_per_version
from repro.siemens import run_tcas_version, tcas_fault
from repro.siemens.suite import tcas_total_lines

VERSIONS = tcas_versions_under_test()

_results = {}


@pytest.mark.parametrize("version", VERSIONS)
def test_table1_row(benchmark, version):
    """One Table 1 row: localize failing tests of a faulty TCAS version."""

    def run():
        return run_tcas_version(
            version,
            test_count=tcas_pool_size(),
            max_localized_tests=tests_per_version(),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[version] = result
    assert result.failing_tests > 0
    assert result.runs > 0
    # The localization must always return at least one candidate location and
    # keep the inspection set far below the whole program.
    assert result.reported_lines
    assert result.size_reduction_percent(tcas_total_lines()) < 60.0


def test_table1_report():
    """Print the aggregated Table 1 after the per-version rows have run."""
    if not _results:
        pytest.skip("no version rows were collected")
    total_lines = tcas_total_lines()
    print()
    print("Table 1 — BugAssist on the TCAS task")
    print(f"{'Ver':>4} {'TC#':>5} {'Err#':>4} {'Runs':>4} {'Detect#':>7} "
          f"{'SizeReduc%':>10} {'Time(s)':>8} {'Type':>8}")
    detected_total = runs_total = 0
    for version, row in sorted(_results.items()):
        fault = tcas_fault(version)
        detected_total += row.detected
        runs_total += row.runs
        print(f"{version:>4} {row.failing_tests:>5} {row.errors:>4} {row.runs:>4} "
              f"{row.detected:>7} {row.size_reduction_percent(total_lines):>10.1f} "
              f"{row.mean_time:>8.2f} {fault.error_type.value:>8}")
    rate = 100.0 * detected_total / runs_total if runs_total else 0.0
    print(f"exact fault location reported in {detected_total}/{runs_total} runs ({rate:.0f}%)")
    assert rate >= 60.0
