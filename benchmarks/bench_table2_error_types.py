"""Table 2: the error-type taxonomy of the injected TCAS faults."""

from __future__ import annotations

from collections import Counter

from repro.siemens import TCAS_FAULTS
from repro.siemens.faults import ErrorType


def test_table2_error_types(benchmark):
    """Every Table 2 error type is represented in the fault catalogue."""

    def classify():
        return Counter(fault.error_type for fault in TCAS_FAULTS)

    counts = benchmark(classify)
    print()
    print("Table 2 — Types of injected errors")
    print(f"{'Error type':>10}  {'#versions':>9}  explanation")
    for error_type in ErrorType:
        print(f"{error_type.value:>10}  {counts[error_type]:>9}  {error_type.explanation()}")
    assert set(counts) == set(ErrorType)
    # Operator faults dominate, as in the paper's Table 1.
    assert counts[ErrorType.OPERATOR] >= 10
