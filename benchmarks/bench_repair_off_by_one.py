"""Section 6.3: localizing (and fixing) the strncat off-by-one overflow."""

from __future__ import annotations

from repro.core import BugAssistLocalizer, Specification
from repro.lang import Interpreter
from repro.siemens.strncat_example import (
    FAULT_LINE,
    LIBRARY_FUNCTIONS,
    fixed_strncat_program,
    strncat_program,
)


def test_strncat_off_by_one(benchmark):
    program = strncat_program()
    localizer = BugAssistLocalizer(
        program, mode="program", unwind=10, hard_functions=LIBRARY_FUNCTIONS
    )

    def run():
        return localizer.localize_test([3], Specification.assertion())

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Section 6.3 — strncat off-by-one")
    print(report.summary())
    # The call site that should pass SIZE - 1 is blamed; the library body is
    # not (its clauses are hard).
    assert report.contains_line(FAULT_LINE)
    assert not set(report.lines) & set(range(13, 26))
    # The paper's fix (SIZE - 1) removes the overflow.
    fixed = Interpreter(fixed_strncat_program()).run([3])
    assert not fixed.assertion_failed
