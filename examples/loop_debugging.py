#!/usr/bin/env python3
"""Section 6.4: find the faulty loop iteration of the square-root program.

Run with ``python examples/loop_debugging.py``.
"""

from repro.core import LoopIterationLocalizer, Specification
from repro.lang import Interpreter, parse_program

SOURCE = """\
int squareroot(int val) {
    int i = 1;
    int v = 0;
    int res = 0;
    while (v < val) {
        v = v + 2 * i + 1;
        i = i + 1;
    }
    res = i;
    assert(res * res <= val && (res + 1) * (res + 1) > val);
    return res;
}
int main(int val) { assume(val > 0); return squareroot(val); }
"""


def main() -> None:
    program = parse_program(SOURCE, name="squareroot")
    run = Interpreter(program).run([50])
    print(f"squareroot(50) returns {run.return_value} and the post-condition "
          f"assertion fails = {run.assertion_failed} (correct answer is 7)")

    localizer = LoopIterationLocalizer(program)
    report = localizer.localize([50], Specification.assertion())
    print()
    print(f"the loop guard was evaluated eta = {report.eta} times")
    print(f"candidate fix lines: {report.lines}")
    for line in sorted(report.iteration_candidates):
        iterations = sorted(set(report.iteration_candidates[line]))
        print(f"  line {line}: fixable at iterations {iterations} "
              f"(reported iteration {report.reported_iteration(line)})")
    print()
    print("line 9 (res = i) outside the loop is the paper's intended fix; the "
          "loop statements are reported together with the iteration at which "
          "a change can still avert the failure.")


if __name__ == "__main__":
    main()
