#!/usr/bin/env python3
"""Section 6.2: trace reduction on the larger benchmarks (Table 3).

For each of tot_info, print_tokens, schedule and schedule2 the failing
trace formula is built with and without the designated reduction technique
(S = slicing, C = concolic simulation, D = delta debugging) and BugAssist
localizes on the reduced instance.  Run with
``python examples/large_program_reduction.py``.
"""

from repro.siemens.programs import LARGE_BENCHMARKS
from repro.siemens.suite import run_large_benchmark


def main() -> None:
    header = (
        f"{'Program':14} {'Reduc':6} {'LOC':>4} {'Proc':>4} "
        f"{'assign# before->after':>22} {'clause# before->after':>22} "
        f"{'Fault#':>6} {'found':>6} {'time(s)':>8}"
    )
    print(header)
    print("-" * len(header))
    for benchmark in LARGE_BENCHMARKS:
        row = run_large_benchmark(benchmark)
        print(
            f"{row.name:14} {row.reduction:6} {row.loc:>4} {row.procedures:>4} "
            f"{row.assignments_before:>10} -> {row.assignments_after:<8} "
            f"{row.clauses_before:>10} -> {row.clauses_after:<8} "
            f"{row.fault_candidates:>6} {str(row.detected):>6} {row.time_seconds:>8.2f}"
        )


if __name__ == "__main__":
    main()
