#!/usr/bin/env python3
"""Quickstart: localize and repair the paper's motivating example (Program 1).

The localization API is session-oriented: a
:class:`~repro.core.session.LocalizationSession` compiles the whole-program
encoding once and localizes any number of failing tests against it — the
per-test inputs and specification live in a retractable solver layer, so
repeated ``localize`` calls (or a whole ``localize_batch``) reuse one
persistent MaxSAT engine instead of rebuilding the instance.

Run with ``python examples/quickstart.py``.
"""

from repro.core import LocalizationSession, OffByOneRepairer, Specification
from repro.lang import Interpreter, parse_program

SOURCE = """\
int Array[3] = {10, 20, 30};
int testme(int index) {
    if (index != 1) {
        index = 2;
    } else {
        index = index + 2;
    }
    int i = index;
    assert(i >= 0 && i < 3);
    return Array[i];
}
int main(int index) { return testme(index); }
"""


def main() -> None:
    program = parse_program(SOURCE, name="motivating-example")

    # 1. Reproduce the failure: input index == 1 violates the bounds assertion.
    run = Interpreter(program).run([1])
    print(f"concrete run with index=1: assertion failed = {run.assertion_failed} "
          f"(line {run.failed_line})")

    # 2. Localize: the session compiles the program once; Algorithm 1 then
    #    enumerates CoMSSes of the extended trace formula per failing test.
    with LocalizationSession(program) as session:
        report = session.localize([1], Specification.assertion())
        print()
        print(report.summary())
        print(f"reported lines: {report.lines}  "
              f"(size reduction {report.size_reduction_percent(12):.1f}% of 12 lines)")

        # The compiled encoding is reused for further failing tests — with
        # several of them, localize_batch ranks the lines by report count
        # (Section 4.3) and can shard across processes.
        ranked = session.localize_batch([([1], Specification.assertion())])
        print(f"ranked lines after {len(ranked.runs)} run(s): {ranked.ranked_lines}")
        print(f"whole-program encodings built: {session.stats.encodings_built}")

    # 3. Repair: Algorithm 2 mutates constants at the reported lines.
    repairer = OffByOneRepairer(program)
    regressions = [
        ([0], Specification.return_value(30)),
        ([2], Specification.return_value(30)),
    ]
    repair = repairer.repair([1], Specification.assertion(), regression_tests=regressions)
    print()
    print("repair:", repair.describe())
    if repair.success:
        print("patched program:")
        print(repair.patched_source())


if __name__ == "__main__":
    main()
