#!/usr/bin/env python3
"""Quickstart: localize and repair the paper's motivating example (Program 1).

Run with ``python examples/quickstart.py``.
"""

from repro.core import BugAssistLocalizer, OffByOneRepairer, Specification
from repro.lang import Interpreter, parse_program

SOURCE = """\
int Array[3] = {10, 20, 30};
int testme(int index) {
    if (index != 1) {
        index = 2;
    } else {
        index = index + 2;
    }
    int i = index;
    assert(i >= 0 && i < 3);
    return Array[i];
}
int main(int index) { return testme(index); }
"""


def main() -> None:
    program = parse_program(SOURCE, name="motivating-example")

    # 1. Reproduce the failure: input index == 1 violates the bounds assertion.
    run = Interpreter(program).run([1])
    print(f"concrete run with index=1: assertion failed = {run.assertion_failed} "
          f"(line {run.failed_line})")

    # 2. Localize: Algorithm 1 enumerates CoMSSes of the extended trace formula.
    localizer = BugAssistLocalizer(program)
    report = localizer.localize_test([1], Specification.assertion())
    print()
    print(report.summary())
    print(f"reported lines: {report.lines}  "
          f"(size reduction {report.size_reduction_percent(12):.1f}% of 12 lines)")

    # 3. Repair: Algorithm 2 mutates constants at the reported lines.
    repairer = OffByOneRepairer(program, localizer=localizer)
    regressions = [
        ([0], Specification.return_value(30)),
        ([2], Specification.return_value(30)),
    ]
    repair = repairer.repair([1], Specification.assertion(), regression_tests=regressions)
    print()
    print("repair:", repair.describe())
    if repair.success:
        print("patched program:")
        print(repair.patched_source())


if __name__ == "__main__":
    main()
