#!/usr/bin/env python3
"""Figure 2 walkthrough: localize the TCAS v2 fault (wrong constant in
Inhibit_Biased_Climb) using failing tests from the Siemens-style pool.

Run with ``python examples/tcas_v2_walkthrough.py``.
"""

from repro.core import LocalizationSession, Specification
from repro.siemens import classify_tcas_tests, tcas_fault, tcas_faulty_program
from repro.siemens.suite import TCAS_HARNESS_LINES, tcas_total_lines


def main() -> None:
    version = "v2"
    fault = tcas_fault(version)
    program = tcas_faulty_program(version)
    print(f"TCAS {version}: {fault.description} (true fault line {fault.fault_lines})")

    failing, passing = classify_tcas_tests(version, count=600)
    print(f"test pool: {len(failing)} failing / {len(passing)} passing tests")

    # Run BugAssist on up to three failing tests and rank the reported lines
    # by how often they appear (Section 4.3).  The session compiles the
    # whole-program encoding once and reuses it for every failing test.
    tests = [
        (vector.as_list(), Specification.return_value(expected))
        for vector, expected in failing[:3]
    ]
    with LocalizationSession(
        program, hard_lines=TCAS_HARNESS_LINES
    ) as session:
        ranked = session.localize_batch(tests, program_name=f"tcas-{version}")

    print()
    print("ranked candidate bug locations (line, #runs reporting it):")
    for line, count in ranked.ranked_lines:
        marker = "  <-- injected fault" if line in fault.fault_lines else ""
        print(f"  line {line:3d}: {count}{marker}")
    print()
    detection = ranked.detection_count(set(fault.fault_lines))
    reduction = ranked.size_reduction_percent(tcas_total_lines())
    print(f"Detect#: {detection}/{len(ranked.runs)} runs reported the true fault line")
    print(f"SizeReduc%: {reduction:.1f}% of the program remains to inspect")


if __name__ == "__main__":
    main()
