#!/usr/bin/env python3
"""Section 6.3: localize the strncat off-by-one overflow and show the fix.

The C library implementation of strncat is assumed correct (its clauses are
hard), so BugAssist blames the call site in MyFunCopy — the line that should
pass SIZE - 1.  Run with ``python examples/off_by_one_repair.py``.
"""

from repro.core import BugAssistLocalizer, Specification
from repro.lang import Interpreter
from repro.lang.pretty import format_program
from repro.siemens.strncat_example import (
    FAULT_LINE,
    LIBRARY_FUNCTIONS,
    STRNCAT_LINES,
    fixed_strncat_program,
    strncat_program,
)


def main() -> None:
    program = strncat_program()
    run = Interpreter(program).run([3])
    print(f"buggy program: buffer overflow assertion failed = {run.assertion_failed}")

    localizer = BugAssistLocalizer(
        program, mode="program", unwind=10, hard_functions=LIBRARY_FUNCTIONS
    )
    report = localizer.localize_test([3], Specification.assertion())
    print()
    print(report.summary())
    print(f"the injected fault is on line {FAULT_LINE}: "
          f"{STRNCAT_LINES[FAULT_LINE - 1].strip()}")
    print(f"fault line reported: {report.contains_line(FAULT_LINE)}")

    # The paper's suggested fix: pass SIZE - 1 instead of SIZE.
    fixed = fixed_strncat_program()
    check = Interpreter(fixed).run([3])
    print()
    print(f"after replacing SIZE with SIZE - 1 the overflow is gone "
          f"(assertion failed = {check.assertion_failed})")
    print()
    print("fixed MyFunCopy:")
    source = format_program(fixed)
    in_function = False
    for line in source.splitlines():
        if line.startswith("void MyFunCopy"):
            in_function = True
        if in_function:
            print("   ", line)
        if in_function and line == "}":
            break


if __name__ == "__main__":
    main()
