"""Setuptools shim so that ``pip install -e . --no-build-isolation`` and
``python setup.py develop`` work in offline environments without the
``wheel`` package."""

from setuptools import setup

setup()
