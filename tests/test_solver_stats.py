"""Per-layer solver statistics: snapshots, deltas, and engine plumbing.

A :class:`~repro.core.session.LocalizationSession` runs many tests on one
persistent solver, so cumulative counters mix every test localized so far.
These tests pin the snapshot/delta API and check that the MaxSAT engine's
``layer_stats`` reports only the work of the innermost layer — the numbers
the per-test benchmarks record.
"""

from __future__ import annotations

from repro.lang import parse_program
from repro.maxsat import WCNF, make_engine
from repro.sat import Solver, SolverStats
from repro.spec import Specification


class TestSolverStatsSnapshot:
    def test_snapshot_is_immutable_copy(self):
        solver = Solver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        solver.solve()
        snap = solver.stats.snapshot()
        before = (snap.propagations, snap.decisions, snap.conflicts)
        solver.add_clause([-2, 3])
        solver.solve()
        assert (snap.propagations, snap.decisions, snap.conflicts) == before

    def test_since_reports_delta_only(self):
        solver = Solver()
        for var in range(1, 9):
            solver.add_clause([var, var + 1])
        solver.solve()
        snap = solver.stats.snapshot()
        solver.add_clause([-3, -4])
        solver.solve([3])
        delta = solver.stats.since(snap)
        assert delta.solve_calls == 1
        assert delta.propagations >= 0
        assert delta.propagations <= solver.stats.propagations
        total = solver.stats
        assert total.propagations == snap.propagations + delta.propagations
        assert total.conflicts == snap.conflicts + delta.conflicts


class TestEngineLayerStats:
    def _engine_with_instance(self):
        wcnf = WCNF()
        for var in range(1, 5):
            wcnf.new_var()
        wcnf.add_hard([1, 2])
        wcnf.add_hard([-1, 3])
        wcnf.add_soft([4], weight=1)
        wcnf.add_soft([-4, 2], weight=1)
        engine = make_engine("hitting-set")
        engine.load(wcnf)
        return engine

    def test_layer_stats_isolated_from_earlier_layers(self):
        engine = self._engine_with_instance()
        engine.solve_current()
        baseline_propagations = engine.solver_stats.propagations

        engine.push_layer()
        engine.add_hard([2])
        engine.solve_current()
        first_layer = engine.layer_stats()
        engine.pop_layer()

        engine.push_layer()
        engine.solve_current()
        second_layer = engine.layer_stats()
        engine.pop_layer()

        # Per-layer numbers never include the pre-layer work.
        assert first_layer.propagations <= engine.solver_stats.propagations
        assert second_layer.propagations <= engine.solver_stats.propagations
        assert (
            first_layer.propagations + second_layer.propagations
            <= engine.solver_stats.propagations
        )
        assert engine.solver_stats.propagations >= baseline_propagations

    def test_layer_sat_calls_reset_per_layer(self):
        engine = self._engine_with_instance()
        engine.solve_current()
        total_before = engine.sat_calls
        engine.push_layer()
        engine.solve_current()
        in_layer = engine.layer_sat_calls()
        engine.pop_layer()
        assert in_layer >= 1
        assert in_layer == engine.sat_calls - total_before

    def test_layer_stats_outside_layers_is_cumulative(self):
        engine = self._engine_with_instance()
        engine.solve_current()
        stats = engine.layer_stats()
        assert stats.propagations == engine.solver_stats.propagations


class TestSessionReportsPropagations:
    def test_localize_reports_per_test_propagations(self):
        from repro.core.session import LocalizationSession

        source = (
            "int main(int x) {\n"
            "    int a = x + 1;\n"
            "    int b = a * 2;\n"
            "    return b;\n"
            "}\n"
        )
        program = parse_program(source, name="stats-session")
        with LocalizationSession(program) as session:
            first = session.localize([3], Specification.return_value(0))
            second = session.localize([4], Specification.return_value(0))
        assert first.propagations > 0
        assert second.propagations > 0
        # The second report must not accumulate the first test's work: both
        # localize near-identical instances, so the counters stay comparable
        # instead of roughly doubling.
        assert second.propagations < 3 * first.propagations
