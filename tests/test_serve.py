"""Tests for the `repro.serve` subsystem.

Covers the content-addressed artifact store (round trip, LRU eviction,
corrupt-spill recovery), the length-prefixed JSON protocol (framing fuzz:
garbage, truncated and oversized frames must cost at most one connection,
never the daemon), the warm-session worker pool (eviction, worker-death
retry) and the end-to-end daemon contract: reports byte-identical to an
in-process :class:`~repro.core.session.LocalizationSession`, with each
distinct program version compiled exactly once however many clients ask.
"""

from __future__ import annotations

import json
import socket
import struct

import pytest

from repro.bmc import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactFormatError,
    BoundedModelChecker,
    artifact_key,
    dumps_artifact,
    loads_artifact,
)
from repro.core import LocalizationSession, Specification
from repro.lang import parse_program
from repro.serve import Client, ServeError, ServerThread, canonical_report_bytes
from repro.serve import protocol
from repro.serve.store import ArtifactStore, ResultCache, normalize_compile_options

CLASSIFY = (
    "int classify(int x) {\n"
    "    int big = 0;\n"
    "    if (x > 7) {\n"  # bug: spec wants threshold 10
    "        big = 1;\n"
    "    }\n"
    "    return big;\n"
    "}\n"
    "int main(int x) { return classify(x); }\n"
)

OTHER = (
    "int main(int x) {\n"
    "    int y = x + 1;\n"
    "    return y;\n"
    "}\n"
)

SPEC_ZERO = {"kind": "return-value", "expected": [0]}


def classify_failing_tests():
    failing = []
    for x in (8, 9, 10):
        failing.append(([x], Specification.return_value(0)))
    return failing


# ---------------------------------------------------------------- artifacts


class TestArtifactSerialization:
    def test_round_trip(self):
        program = parse_program(CLASSIFY, name="classify")
        compiled = BoundedModelChecker(program, group_statements=True).compile_program()
        clone = loads_artifact(dumps_artifact(compiled))
        assert clone.num_vars == compiled.num_vars
        assert clone.num_clauses == compiled.num_clauses
        assert clone.signature == compiled.signature

    def test_rejects_garbage_and_wrong_version(self):
        with pytest.raises(ArtifactFormatError):
            loads_artifact(b"definitely not an artifact")
        program = parse_program(OTHER, name="other")
        compiled = BoundedModelChecker(program, group_statements=True).compile_program()
        blob = bytearray(dumps_artifact(compiled))
        offset = blob.index(ARTIFACT_FORMAT_VERSION.to_bytes(4, "big")[-1])
        blob[offset] = (blob[offset] + 1) % 256
        with pytest.raises(ArtifactFormatError):
            loads_artifact(bytes(blob))
        # Truncated pickle body.
        with pytest.raises(ArtifactFormatError):
            loads_artifact(dumps_artifact(compiled)[:-20])

    def test_key_is_stable_and_option_sensitive(self):
        base = artifact_key(CLASSIFY, normalize_compile_options({"name": "classify"}))
        again = artifact_key(CLASSIFY, normalize_compile_options({"name": "classify"}))
        assert base == again
        other_text = artifact_key(OTHER, normalize_compile_options({"name": "classify"}))
        other_opts = artifact_key(
            CLASSIFY, normalize_compile_options({"name": "classify", "unwind": 8})
        )
        assert len({base, other_text, other_opts}) == 3

    def test_unknown_compile_option_rejected(self):
        with pytest.raises(ValueError):
            normalize_compile_options({"no_such_option": 1})


class TestArtifactStore:
    def test_compile_once_then_memory_hits(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        key1, compiled1, source1 = store.get_or_compile(CLASSIFY, {"name": "classify"})
        key2, compiled2, source2 = store.get_or_compile(CLASSIFY, {"name": "classify"})
        assert key1 == key2
        assert source1 == "compiled" and source2 == "memory"
        assert compiled2 is compiled1
        assert store.stats.compiles == 1

    def test_disk_round_trip_across_stores(self, tmp_path):
        first = ArtifactStore(root=tmp_path)
        key, compiled, _ = first.get_or_compile(CLASSIFY, {"name": "classify"})
        # A second store over the same directory: no compile, a disk hit.
        second = ArtifactStore(root=tmp_path)
        key2, clone, source = second.get_or_compile(CLASSIFY, {"name": "classify"})
        assert key2 == key
        assert source == "disk"
        assert second.stats.compiles == 0
        assert clone.num_clauses == compiled.num_clauses

    def test_memory_eviction_falls_back_to_disk(self, tmp_path):
        store = ArtifactStore(root=tmp_path, max_memory_entries=1)
        key_a, _, _ = store.get_or_compile(CLASSIFY, {"name": "classify"})
        store.get_or_compile(OTHER, {"name": "other"})  # evicts the first
        assert store.stats.evictions == 1
        assert len(store) == 1
        _, _, source = store.get_or_compile(CLASSIFY, {"name": "classify"})
        assert source == "disk"
        assert store.stats.compiles == 2  # no third compile

    def test_memory_only_store_recompiles_after_eviction(self):
        store = ArtifactStore(root=None, max_memory_entries=1)
        store.get_or_compile(CLASSIFY, {"name": "classify"})
        store.get_or_compile(OTHER, {"name": "other"})
        _, _, source = store.get_or_compile(CLASSIFY, {"name": "classify"})
        assert source == "compiled"
        assert store.stats.compiles == 3

    def test_corrupt_spill_is_recovered(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        key, _, _ = store.get_or_compile(CLASSIFY, {"name": "classify"})
        spill = tmp_path / f"{key}.artifact"
        assert spill.exists()
        spill.write_bytes(b"rotten bytes, not a pickle")
        fresh = ArtifactStore(root=tmp_path)
        _, compiled, source = fresh.get_or_compile(CLASSIFY, {"name": "classify"})
        assert source == "compiled"
        assert fresh.stats.corrupt_recovered == 1
        assert compiled.num_clauses > 0
        # The recompile re-spilled a healthy artifact.
        assert loads_artifact(spill.read_bytes()).num_clauses == compiled.num_clauses

    def test_truncated_spill_is_recovered(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        key, _, _ = store.get_or_compile(CLASSIFY, {"name": "classify"})
        spill = tmp_path / f"{key}.artifact"
        spill.write_bytes(spill.read_bytes()[:40])
        fresh = ArtifactStore(root=tmp_path)
        _, _, source = fresh.get_or_compile(CLASSIFY, {"name": "classify"})
        assert source == "compiled"
        assert fresh.stats.corrupt_recovered == 1

    def test_stale_format_spill_swept_at_startup(self, tmp_path):
        """A format bump invalidates old spills in one startup pass."""
        store = ArtifactStore(root=tmp_path)
        key, _, _ = store.get_or_compile(CLASSIFY, {"name": "classify"})
        spill = tmp_path / f"{key}.artifact"
        data = spill.read_bytes()
        magic = len(b"repro-artifact\x00")
        stale = (
            data[:magic]
            + (ARTIFACT_FORMAT_VERSION - 1).to_bytes(4, "big")
            + data[magic + 4 :]
        )
        spill.write_bytes(stale)
        fresh = ArtifactStore(root=tmp_path)
        assert fresh.stats.stale_swept == 1
        assert not spill.exists()
        # The stale spill never reaches the unpickler: the next request is
        # a clean miss-and-recompile, not a corrupt recovery.
        _, _, source = fresh.get_or_compile(CLASSIFY, {"name": "classify"})
        assert source == "compiled"
        assert fresh.stats.corrupt_recovered == 0
        assert fresh.stats.compiles == 1


CLASSIFY_FIXED = CLASSIFY.replace("x > 7", "x > 10")


class TestWarmCompile:
    def test_nearest_ancestor_is_spliced(self):
        store = ArtifactStore()
        base_key, _, _ = store.get_or_compile(CLASSIFY, {"name": "classify"})
        key, compiled, source = store.get_or_compile(
            CLASSIFY_FIXED, {"name": "classify"}
        )
        assert key != base_key
        assert source == "warm"
        assert compiled.spliced_from == base_key
        assert 0.0 < compiled.impact_fraction < 1.0
        assert store.stats.warm_compiles == 1
        # Byte-equivalent encoding: a store with no ancestor compiles the
        # same program cold and lands on the same CNF signature.
        cold_store = ArtifactStore()
        _, cold, cold_source = cold_store.get_or_compile(
            CLASSIFY_FIXED, {"name": "classify"}
        )
        assert cold_source == "compiled"
        assert cold.signature == compiled.signature
        assert cold.num_clauses == compiled.num_clauses

    def test_explicit_base_artifact_hint(self):
        store = ArtifactStore()
        base_key, _, _ = store.get_or_compile(CLASSIFY, {"name": "classify"})
        _, compiled, source = store.get_or_compile(
            CLASSIFY_FIXED, {"name": "classify"}, base_artifact=base_key
        )
        assert source == "warm"
        assert compiled.spliced_from == base_key

    def test_unknown_hint_falls_back_to_cold(self):
        store = ArtifactStore()
        store.get_or_compile(CLASSIFY, {"name": "classify"})
        _, compiled, source = store.get_or_compile(
            CLASSIFY_FIXED, {"name": "classify"}, base_artifact="no-such-key"
        )
        assert source == "compiled"
        assert compiled.spliced_from is None

    def test_dissimilar_program_compiles_cold(self):
        store = ArtifactStore()
        store.get_or_compile(CLASSIFY, {"name": "classify"})
        _, compiled, source = store.get_or_compile(OTHER, {"name": "other"})
        assert source == "compiled"
        assert store.stats.warm_compiles == 0

    def test_option_mismatch_is_not_a_splice_base(self):
        store = ArtifactStore()
        store.get_or_compile(CLASSIFY, {"name": "classify", "unwind": 8})
        _, compiled, source = store.get_or_compile(
            CLASSIFY_FIXED, {"name": "classify", "unwind": 16}
        )
        assert source == "compiled"
        assert compiled.spliced_from is None

    def test_decline_stats_distinguish_early(self, monkeypatch):
        """A declined splice is counted, split by early (precondition) vs
        late (mid-replay); both fields travel through ``as_dict``."""
        import repro.bmc.splice as splice_mod

        store = ArtifactStore()
        store.get_or_compile(CLASSIFY, {"name": "classify"})

        def abort(self, *args, **kwargs):
            raise splice_mod.SpliceDecline

        monkeypatch.setattr(splice_mod._Replay, "run", abort)
        _, compiled, source = store.get_or_compile(
            CLASSIFY_FIXED, {"name": "classify"}
        )
        assert source == "compiled"
        assert compiled.spliced_from is None
        assert store.stats.splice_declines == 1
        assert store.stats.splice_declined_early == 0
        stats = store.stats.as_dict()
        assert stats["splice_declines"] == 1
        assert stats["splice_declined_early"] == 0

    def test_evicted_memory_only_base_is_unindexed(self):
        store = ArtifactStore(root=None, max_memory_entries=1)
        store.get_or_compile(CLASSIFY, {"name": "classify"})
        store.get_or_compile(OTHER, {"name": "other"})  # evicts the base
        _, _, source = store.get_or_compile(CLASSIFY_FIXED, {"name": "classify"})
        assert source == "compiled"

    def test_spilled_base_survives_eviction_as_ancestor(self, tmp_path):
        store = ArtifactStore(root=tmp_path, max_memory_entries=1)
        base_key, _, _ = store.get_or_compile(CLASSIFY, {"name": "classify"})
        store.get_or_compile(OTHER, {"name": "other"})  # evicts to disk
        _, compiled, source = store.get_or_compile(
            CLASSIFY_FIXED, {"name": "classify"}
        )
        assert source == "warm"
        assert compiled.spliced_from == base_key


class TestResultCache:
    def test_lru_bound_and_stats(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == {"v": 1}
        cache.put("c", {"v": 3})  # evicts "b" (least recently used)
        assert cache.get("b") is None
        assert cache.get("a") == {"v": 1}
        assert len(cache) == 2
        stats = cache.as_dict()
        assert stats["hits"] == 2 and stats["misses"] == 1

    def test_disabled_cache(self):
        cache = ResultCache(max_entries=0)
        cache.put("a", {"v": 1})
        assert cache.get("a") is None


# ----------------------------------------------------------------- protocol


class TestFraming:
    def test_pack_and_decode_round_trip(self):
        payload = {"op": "stats", "value": [1, 2, 3]}
        frame = protocol.pack_frame(payload)
        length = protocol.frame_length(frame[:4])
        assert protocol.decode_body(frame[4 : 4 + length]) == payload

    def test_header_validation(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.frame_length(b"\x00\x00")  # short header
        with pytest.raises(protocol.ProtocolError):
            protocol.frame_length(struct.pack("!I", 0))  # zero length
        with pytest.raises(protocol.ProtocolError):
            protocol.frame_length(struct.pack("!I", protocol.MAX_FRAME_BYTES + 1))

    def test_body_validation(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_body(b"\xff\xfe garbage")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_body(b"[1, 2, 3]")  # JSON, but not an object

    def test_spec_codec(self):
        spec = Specification.return_value(-1)
        assert protocol.spec_from_wire(protocol.spec_to_wire(spec)) == spec
        with pytest.raises(protocol.ProtocolError):
            protocol.spec_from_wire({"kind": "telepathy"})

    def test_test_codec(self):
        assert protocol.test_from_wire([1, 2]) == [1, 2]
        assert protocol.test_from_wire({"x": 3}) == {"x": 3}
        with pytest.raises(protocol.ProtocolError):
            protocol.test_from_wire("nope")


# ------------------------------------------------------------------- daemon


@pytest.fixture(scope="module")
def daemon():
    with ServerThread(workers=2, max_sessions_per_worker=4) as handle:
        with Client(tcp=handle.tcp_address) as probe:
            probe.wait_until_ready()
        yield handle


class TestDaemon:
    def test_reports_byte_identical_to_in_process_session(self, daemon):
        failing = classify_failing_tests()
        with Client(tcp=daemon.tcp_address) as client:
            reply = client.localize_batch(
                [
                    {
                        "program": CLASSIFY,
                        "options": {"name": "classify", "max_candidates": 25},
                        "tests": [
                            {"inputs": inputs, "spec": spec}
                            for inputs, spec in failing
                        ],
                    }
                ]
            )
        result = reply["results"][0]
        program = parse_program(CLASSIFY, name="classify")
        with LocalizationSession(program) as session:
            baseline = [session.localize(inputs, spec) for inputs, spec in failing]
            ranked = [
                [line, count]
                for line, count in LocalizationSession.from_compiled(
                    session.compiled
                ).localize_batch(failing).ranked_lines
            ]
        for wire, mine in zip(result["reports"], baseline):
            assert canonical_report_bytes(wire) == canonical_report_bytes(mine)
        assert result["ranked_lines"] == ranked

    def test_compile_exactly_once_across_clients(self, daemon):
        before = daemon.server.store.stats.compiles
        for _ in range(2):
            with Client(tcp=daemon.tcp_address) as client:
                compiled = client.compile(OTHER, name="other-once")
                client.localize(
                    test=[1],
                    spec={"kind": "return-value", "expected": [2]},
                    artifact=compiled["artifact"],
                )
        assert daemon.server.store.stats.compiles == before + 1

    def test_repeated_request_replays_from_result_cache(self, daemon):
        with Client(tcp=daemon.tcp_address) as client:
            first = client.localize(
                test=[8], spec=SPEC_ZERO, program=CLASSIFY,
                options={"name": "classify-cache"},
            )
            hits_before = daemon.server.result_cache.hits
            second = client.localize(
                test=[8], spec=SPEC_ZERO, program=CLASSIFY,
                options={"name": "classify-cache"},
            )
        assert second["report"] == first["report"]
        assert daemon.server.result_cache.hits == hits_before + 1

    def test_worker_death_is_retried_transparently(self, daemon):
        pool = daemon.server.pool
        restarts_before = pool.stats.worker_restarts
        pool.kill_worker(0)
        pool.kill_worker(1)
        with Client(tcp=daemon.tcp_address) as client:
            reply = client.localize(
                test=[9], spec=SPEC_ZERO, program=CLASSIFY,
                options={"name": "classify-chaos"},
            )
        assert reply["report"]["lines"]
        assert pool.stats.worker_restarts > restarts_before

    def test_worker_sessions_are_bounded_and_warm(self, daemon):
        # Push more program versions than the per-worker session bound; the
        # worker must report a bounded session count, evictions, and zero
        # encodings built (sessions only ever adopt store artifacts).
        with Client(tcp=daemon.tcp_address) as client:
            for index in range(6):
                source = OTHER.replace("x + 1", f"x + {index + 2}")
                client.localize(
                    test=[0],
                    spec={"kind": "return-value", "expected": [index + 2]},
                    program=source,
                    options={"name": f"variant-{index}"},
                )
        reports = daemon.server.pool.stats.worker_reports
        assert reports
        for report in reports.values():
            assert report["sessions"] <= 4
            assert report["encodings_built"] == 0

    def test_errors_are_answered_not_fatal(self, daemon):
        with Client(tcp=daemon.tcp_address) as client:
            with pytest.raises(ServeError, match="unknown op"):
                client.request({"op": "transmogrify"})
            with pytest.raises(ServeError, match="unknown artifact"):
                client.localize(test=[1], spec=SPEC_ZERO, artifact="f" * 64)
            with pytest.raises(ServeError, match="ParseError|error"):
                client.compile("int main( {")
            # The daemon is still healthy.
            assert client.stats()["ok"] is True

    def test_framing_fuzz_never_kills_the_daemon(self, daemon):
        host, port = daemon.tcp_address
        attacks = [
            b"\x00\x00",                                      # truncated header
            struct.pack("!I", 0),                             # zero-length frame
            struct.pack("!I", protocol.MAX_FRAME_BYTES + 7),  # oversized claim
            b"\xde\xad\xbe\xef" + b"\x00" * 64,               # garbage header+body
            struct.pack("!I", 9) + b"not json!",              # invalid JSON body
            struct.pack("!I", 40) + b'{"op": "stats"}',       # length > body, hang up
        ]
        for attack in attacks:
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(attack)
                sock.shutdown(socket.SHUT_WR)
                # Drain whatever the daemon answers (an error frame or a
                # clean close); the connection must terminate either way.
                while sock.recv(4096):
                    pass
        # After the whole barrage the daemon still serves real clients.
        with Client(tcp=daemon.tcp_address) as client:
            reply = client.localize(
                test=[10], spec=SPEC_ZERO, program=CLASSIFY,
                options={"name": "classify-after-fuzz"},
            )
        assert reply["report"]["lines"]

    def test_stats_surface(self, daemon):
        with Client(tcp=daemon.tcp_address) as client:
            stats = client.stats()
        assert stats["server"]["requests_served"] > 0
        assert set(stats["store"]) >= {"compiles", "hit_rate", "corrupt_recovered"}
        assert set(stats["pool"]) >= {"shards_dispatched", "worker_restarts"}


class TestStoreConcurrency:
    def test_concurrent_requests_compile_single_flight(self, tmp_path):
        import threading

        store = ArtifactStore(root=tmp_path)
        results = []
        barrier = threading.Barrier(4)

        def hammer():
            barrier.wait()
            results.append(store.get_or_compile(CLASSIFY, {"name": "single-flight"}))

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store.stats.compiles == 1
        assert len({key for key, _, _ in results}) == 1
        assert sum(1 for _, _, source in results if source == "compiled") == 1


class TestWorkerWatchdog:
    def test_unresponsive_worker_is_killed_and_shard_fails_cleanly(self, tmp_path):
        from repro.serve.workers import Job, ServeShardError, WorkerPool
        from repro.bmc import dumps_artifact

        store = ArtifactStore(root=tmp_path)
        key, compiled, _ = store.get_or_compile(CLASSIFY, {"name": "watchdog"})
        blob = dumps_artifact(compiled)
        job = Job(
            artifact_key=key,
            artifact_bytes=lambda: blob,
            session_options={"max_candidates": 3},
            tests=[((0, 0), [8], Specification.return_value(0), ())],
        )
        # A timeout far below any real localization: the watchdog must
        # declare the worker wedged, kill it, retry once on a respawned
        # worker, and surface a clean ServeShardError — never hang.
        pool = WorkerPool(workers=1, shard_timeout=0.001)
        try:
            with pytest.raises(ServeShardError, match="no reply|died twice"):
                pool.run_jobs([job])
            assert pool.stats.worker_restarts >= 1
        finally:
            pool.stop()


class TestScheduling:
    def test_shard_size_bound_is_honoured(self):
        from repro.serve.workers import Job, WorkerPool

        pool = WorkerPool(workers=2, max_tests_per_shard=8)
        job = Job(
            artifact_key="k",
            artifact_bytes=lambda: b"",
            session_options={},
            tests=[(i, [i], None, ()) for i in range(20)],
        )
        sizes = [len(shard.tests) for shard in pool._make_shards([job])]
        # The shard is the retry/watchdog unit: its size must respect the
        # bound even when the job would fit in fewer, larger shards.
        assert sizes == [8, 8, 4]

    def test_batch_larger_than_memory_store_still_succeeds(self):
        # Jobs hold a strong reference to their artifact, so a memory-only
        # store whose LRU is smaller than one batch cannot lose an earlier
        # entry's artifact to eviction while the batch is still running.
        with ServerThread(
            workers=1, store=ArtifactStore(root=None, max_memory_entries=2)
        ) as handle:
            with Client(tcp=handle.tcp_address) as client:
                client.wait_until_ready()
                entries = []
                for index in range(4):
                    source = OTHER.replace("x + 1", f"x + {index + 10}")
                    entries.append(
                        {
                            "program": source,
                            "options": {"name": f"evict-{index}"},
                            "tests": [
                                {
                                    "inputs": [0],
                                    "spec": {
                                        "kind": "return-value",
                                        "expected": [index + 10],
                                    },
                                }
                            ],
                        }
                    )
                reply = client.localize_batch(entries)
        assert len(reply["results"]) == 4
        assert handle.server.store.stats.evictions >= 1


class TestDaemonLifecycle:
    def test_bind_failure_does_not_leak_workers(self):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        handle = ServerThread(tcp=("127.0.0.1", port), workers=1)
        try:
            with pytest.raises(RuntimeError):
                handle.start()
            # The pre-forked pool was torn down with the failed bind.
            assert handle.server.pool.worker_pids() == []
        finally:
            blocker.close()
            handle.stop()

    def test_unix_socket_and_shutdown(self, tmp_path):
        path = tmp_path / "serve.sock"
        with ServerThread(tcp=None, unix_path=path, workers=1) as handle:
            with Client(unix_path=path) as client:
                client.wait_until_ready()
                reply = client.localize(
                    test=[1], spec={"kind": "return-value", "expected": [2]},
                    program=OTHER, options={"name": "unix-other"},
                )
                assert reply["ok"]
                assert client.shutdown()["stopping"]
        assert not path.exists()


# ------------------------------------------------- compile-time diagnostics


WARNY = (
    "int main(int x) {\n"
    "    int total;\n"
    "    int sum = total + x;\n"
    "    return sum;\n"
    "}\n"
)

REJECTED = (
    "int main(int x) {\n"
    "    int zero = 0;\n"
    "    return x / zero;\n"
    "}\n"
)


class TestCompileDiagnostics:
    def test_compile_response_carries_diagnostics(self, daemon):
        with Client(tcp=daemon.tcp_address) as client:
            reply = client.compile(WARNY, name="warny")
        assert reply["ok"]
        codes = {d["code"] for d in reply["diagnostics"]}
        assert "uninitialized-read" in codes
        assert all(isinstance(d["line"], int) for d in reply["diagnostics"])
        assert "pruned_lines" in reply and "narrowed_vars" in reply

    def test_clean_program_has_empty_diagnostics(self, daemon):
        with Client(tcp=daemon.tcp_address) as client:
            reply = client.compile(CLASSIFY, name="classify-diag")
        assert reply["ok"]
        assert reply["diagnostics"] == []

    def test_error_program_is_rejected_with_structure(self, daemon):
        host, port = daemon.tcp_address
        with socket.create_connection((host, port), timeout=10) as sock:
            protocol.send_frame(
                sock,
                {"op": "compile", "program": REJECTED, "options": {"name": "bad"}},
            )
            response = protocol.recv_frame(sock)
        assert response["ok"] is False
        assert response["error_kind"] == "rejected"
        assert "rejected" in response["error"]
        codes = {d["code"] for d in response["diagnostics"]}
        assert codes == {"const-div-by-zero"}
        assert response["diagnostics"][0]["line"] == 3
        # The daemon is healthy and the artifact was never stored.
        with Client(tcp=daemon.tcp_address) as client:
            assert client.stats()["ok"] is True

    def test_parse_error_is_rejected_with_structure(self, daemon):
        host, port = daemon.tcp_address
        with socket.create_connection((host, port), timeout=10) as sock:
            protocol.send_frame(
                sock, {"op": "compile", "program": "int main( {", "options": {}}
            )
            response = protocol.recv_frame(sock)
        assert response["ok"] is False
        assert response["error_kind"] == "rejected"
        assert response["diagnostics"][0]["severity"] == "error"

    def test_narrowing_option_is_part_of_the_artifact_key(self):
        on = normalize_compile_options({})
        off = normalize_compile_options({"analysis_narrowing": False})
        assert on["analysis_narrowing"] is True
        assert artifact_key(CLASSIFY, on) != artifact_key(CLASSIFY, off)


# ------------------------------------------------------ inbound frame bound


class TestInboundFrameBound:
    def test_oversized_frame_gets_structured_error_and_drop(self):
        with ServerThread(workers=1, max_frame_bytes=4096) as handle:
            host, port = handle.tcp_address
            with Client(tcp=(host, port)) as client:
                client.wait_until_ready()
            with socket.create_connection((host, port), timeout=10) as sock:
                payload = json.dumps(
                    {"op": "compile", "program": "x" * 8192}
                ).encode()
                sock.sendall(struct.pack("!I", len(payload)) + payload)
                response = protocol.recv_frame(sock)
                assert response["ok"] is False
                assert response["error_kind"] == "protocol"
                assert "exceeds" in response["error"]
                # Only this connection is dropped: EOF follows the error.
                assert sock.recv(4096) == b""
            # Compliant clients on new connections are unaffected.
            with Client(tcp=(host, port)) as client:
                reply = client.compile(OTHER, name="after-oversize")
                assert reply["ok"]

    def test_bound_does_not_limit_responses(self):
        # A server with a tiny inbound bound can still answer with frames
        # bigger than that bound (response packing uses the protocol cap).
        with ServerThread(workers=1, max_frame_bytes=512) as handle:
            host, port = handle.tcp_address
            with socket.create_connection((host, port), timeout=10) as sock:
                protocol.send_frame(sock, {"op": "stats"})
                response = protocol.recv_frame(sock)
            assert response["ok"] is True

    def test_fuzz_small_bound_server_survives(self):
        import random

        rng = random.Random(20260807)
        with ServerThread(workers=1, max_frame_bytes=1024) as handle:
            host, port = handle.tcp_address
            for _ in range(25):
                blob = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 64)))
                with socket.create_connection((host, port), timeout=10) as sock:
                    sock.sendall(blob)
                    sock.shutdown(socket.SHUT_WR)
                    while sock.recv(4096):
                        pass
            with Client(tcp=(host, port)) as client:
                assert client.stats()["ok"] is True

    def test_nonpositive_bound_rejected(self):
        from repro.serve.server import LocalizationServer

        with pytest.raises(ValueError):
            LocalizationServer(max_frame_bytes=0)
