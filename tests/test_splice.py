"""Journal-replay splice: warm cross-version compiles must be cold-equivalent.

The contract under test is the tentpole invariant of the incremental
pipeline: an artifact produced by splicing a prior version's emission
journal is *encoding-identical* to one compiled cold — same CNF, same
groups, same journal, same analysis products — differing only in
provenance (``spliced_from``, ``impact_fraction``, ``gates_shared``).
Localization reports over the two artifacts are byte-identical.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.bmc import BoundedModelChecker, dumps_artifact, loads_artifact
from repro.bmc.splice import splice_compile
from repro.core import LocalizationSession, Specification
from repro.serve import canonical_report_bytes
from repro.siemens import classify_tcas_tests, tcas_faulty_program

#: Fields that legitimately differ between a warm and a cold compile.
PROVENANCE_FIELDS = {"spliced_from", "impact_fraction", "gates_shared"}


def cold_compile(version: str):
    program = tcas_faulty_program(version)
    return BoundedModelChecker(program, group_statements=True).compile_program()


def warm_compile(base, version: str, base_key: str = "base"):
    program = tcas_faulty_program(version)
    return splice_compile(
        base, BoundedModelChecker(program, group_statements=True), base_key=base_key
    )


def assert_encoding_identical(warm, cold) -> None:
    for field in dataclasses.fields(warm):
        if field.name in PROVENANCE_FIELDS:
            continue
        assert getattr(warm, field.name) == getattr(cold, field.name), field.name


class TestSpliceEquivalence:
    @pytest.mark.parametrize("version", ["v2", "v13", "v28", "v40"])
    def test_warm_equals_cold(self, version):
        base = cold_compile("v1")
        warm = warm_compile(base, version)
        assert warm is not None, f"{version} unexpectedly declined"
        assert warm.spliced_from == "base"
        assert 0.0 <= warm.impact_fraction < 1.0
        assert_encoding_identical(warm, cold_compile(version))

    def test_changed_global_initializer_version(self):
        # v16 edits a global initializer; whether the splice proceeds (via
        # mapped replay) or declines, the result must match cold.
        base = cold_compile("v1")
        warm = warm_compile(base, "v16")
        if warm is not None:
            assert_encoding_identical(warm, cold_compile("v16"))

    def test_identity_splice(self):
        base = cold_compile("v1")
        warm = warm_compile(base, "v1")
        assert warm is not None
        assert warm.impact_fraction == 0.0
        assert_encoding_identical(warm, base)

    def test_splice_chains_across_versions(self):
        v1 = cold_compile("v1")
        v2 = warm_compile(v1, "v2")
        assert v2 is not None
        v13 = warm_compile(v2, "v13", base_key="v2-warm")
        assert v13 is not None
        assert v13.spliced_from == "v2-warm"
        assert_encoding_identical(v13, cold_compile("v13"))

    def test_spliced_artifact_round_trips(self):
        base = cold_compile("v1")
        warm = warm_compile(base, "v2")
        clone = loads_artifact(dumps_artifact(warm))
        assert clone.signature == warm.signature
        assert clone.num_clauses == warm.num_clauses
        assert clone.spliced_from == warm.spliced_from
        # A reloaded warm artifact works as a splice base in turn.
        again = warm_compile(clone, "v13")
        assert again is not None
        assert_encoding_identical(again, cold_compile("v13"))


class TestSpliceDeclines:
    def test_option_mismatch_declines(self):
        base = cold_compile("v1")
        program = tcas_faulty_program("v2")
        checker = BoundedModelChecker(program, group_statements=True, unwind=8)
        assert splice_compile(base, checker) is None

    def test_missing_journal_declines(self):
        base = cold_compile("v1")
        stripped = dataclasses.replace(base, journal=None)
        program = tcas_faulty_program("v2")
        checker = BoundedModelChecker(program, group_statements=True)
        assert splice_compile(stripped, checker) is None

    def test_unknown_entry_declines(self):
        base = cold_compile("v1")
        program = tcas_faulty_program("v2")
        checker = BoundedModelChecker(program, group_statements=True)
        assert splice_compile(base, checker, entry="nonexistent") is None


class TestSpliceLocalization:
    def test_reports_byte_identical(self):
        failing, _ = classify_tcas_tests("v2", count=200)
        assert failing
        vector, expected = failing[0]
        spec = Specification.return_value(expected)
        base = cold_compile("v1")
        warm = warm_compile(base, "v2")
        cold = cold_compile("v2")
        reports = []
        for compiled in (warm, cold):
            with LocalizationSession.from_compiled(compiled) as session:
                reports.append(
                    canonical_report_bytes(session.localize(vector.as_list(), spec))
                )
        assert reports[0] == reports[1]

    def test_session_base_artifact(self):
        base = cold_compile("v1")
        warm_session = LocalizationSession(
            tcas_faulty_program("v2"), base_artifact=base
        )
        compiled = warm_session.compiled
        assert warm_session.stats.encodings_spliced == 1
        assert warm_session.stats.encodings_built == 1
        assert_encoding_identical(compiled, cold_compile("v2"))

    def test_session_falls_back_cold_on_decline(self):
        base = cold_compile("v1")
        session = LocalizationSession(
            tcas_faulty_program("v2"), unwind=8, base_artifact=base
        )
        compiled = session.compiled
        assert session.stats.encodings_spliced == 0
        assert session.stats.encodings_built == 1
        assert compiled.spliced_from is None
        # An option mismatch is a precondition failure: counted as an
        # *early* decline (no analysis or replay work was paid for).
        assert session.stats.splices_declined == 1
        assert session.stats.splices_declined_early == 1


class TestDeclineCost:
    """Declined warm compiles must not pay for work they then discard."""

    def test_early_decline_skips_analysis_and_replay(self, monkeypatch):
        """A precondition failure declines before any expensive stage."""
        import repro.bmc.splice as splice_mod

        def forbid(self, *args, **kwargs):
            raise AssertionError("journal replay ran on an early decline")

        monkeypatch.setattr(splice_mod._Replay, "run", forbid)
        monkeypatch.setattr(splice_mod._Replay, "__init__", forbid)
        base = cold_compile("v1")
        program = tcas_faulty_program("v2")
        outcome = {}
        checker = BoundedModelChecker(program, group_statements=True, unwind=8)
        assert splice_compile(base, checker, outcome=outcome) is None
        assert outcome == {"declined": True, "declined_early": True}
        # Missing journal, unknown entry: same early path.
        for kwargs, entry in (({"journal": None}, "main"), ({}, "nonexistent")):
            outcome = {}
            stripped = dataclasses.replace(base, **kwargs)
            checker = BoundedModelChecker(program, group_statements=True)
            assert splice_compile(stripped, checker, entry=entry, outcome=outcome) is None
            assert outcome == {"declined": True, "declined_early": True}

    def test_late_decline_reported_distinctly(self, monkeypatch):
        """A mid-replay abort is flagged as a *late* (paid-for) decline."""
        import repro.bmc.splice as splice_mod

        def abort(self, *args, **kwargs):
            raise splice_mod.SpliceDecline

        monkeypatch.setattr(splice_mod._Replay, "run", abort)
        base = cold_compile("v1")
        outcome = {}
        checker = BoundedModelChecker(
            tcas_faulty_program("v2"), group_statements=True
        )
        assert splice_compile(base, checker, outcome=outcome) is None
        assert outcome == {"declined": True, "declined_early": False}

    def test_early_decline_costs_fraction_of_cold(self):
        """The declined-warm ≤ ~1.05× cold guarantee, at mechanism level:
        the decline check itself is a vanishing fraction of a cold compile
        (the honest warm number is decline check + cold re-run)."""
        base = cold_compile("v1")
        program = tcas_faulty_program("v2")
        started = time.perf_counter()
        cold = cold_compile("v2")
        cold_seconds = time.perf_counter() - started
        assert cold is not None
        checker = BoundedModelChecker(program, group_statements=True, unwind=8)
        started = time.perf_counter()
        outcome = {}
        assert splice_compile(base, checker, outcome=outcome) is None
        decline_seconds = time.perf_counter() - started
        assert outcome["declined_early"]
        # Measured ~1000x headroom; 4x tolerance keeps slow CI green.
        assert decline_seconds <= cold_seconds / 4


class TestRegionReencode:
    def test_schedule_cross_span_sharing_splices(self):
        """Regression: schedule's region re-encode unifies structurally
        identical gates across call spans, mapping recovered gate outputs
        *backwards*.  The replay must accept such maps (per-key canonical
        checks, not global monotonicity) and still land on the cold bytes."""
        from repro.bmc.splice import splice_compile as run_splice
        from repro.siemens.programs import LARGE_BENCHMARKS

        case = next(b for b in LARGE_BENCHMARKS if b.name == "schedule")
        base = BoundedModelChecker(
            case.reference_program(), group_statements=True
        ).compile_program()
        outcome = {}
        warm = run_splice(
            base,
            BoundedModelChecker(case.faulty_program(), group_statements=True),
            base_key="reference",
            outcome=outcome,
        )
        assert warm is not None, f"schedule declined: {outcome}"
        cold = BoundedModelChecker(
            case.faulty_program(), group_statements=True
        ).compile_program()
        assert warm.signature == cold.signature
        assert warm.num_vars == cold.num_vars
        assert warm.num_clauses == cold.num_clauses
