"""Tests for the bounded model checker (the CBMC replacement)."""

from __future__ import annotations

from repro.bmc import BoundedModelChecker
from repro.lang import Interpreter, parse_program


def check(source: str, unwind: int = 16, width: int = 16):
    return BoundedModelChecker(parse_program(source), width=width, unwind=unwind)


class TestAssertionSearch:
    def test_finds_violating_input(self):
        source = """
        int main(int x) {
            assert(x != 42);
            return x;
        }
        """
        counterexample = check(source).find_counterexample()
        assert counterexample is not None
        assert counterexample.inputs["x"] == 42
        assert counterexample.violated_line == 3

    def test_reports_safe_program(self):
        source = """
        int main(int x) {
            int y = x * 0;
            assert(y == 0);
            return y;
        }
        """
        assert check(source).find_counterexample() is None
        assert check(source).holds()

    def test_counterexample_replays_in_interpreter(self):
        source = """
        int main(int a, int b) {
            int smaller = a;
            if (b < a) { smaller = b; }
            assert(smaller <= a && smaller <= b && (smaller == a || smaller == b) && smaller != 7);
            return smaller;
        }
        """
        program = parse_program(source)
        counterexample = BoundedModelChecker(program).find_counterexample()
        assert counterexample is not None
        result = Interpreter(program).run(counterexample.as_test())
        assert result.assertion_failed

    def test_branches_explored_symbolically(self):
        source = """
        int main(int x) {
            int y = 0;
            if (x > 10) {
                y = 1;
            } else {
                y = 2;
            }
            assert(y != 1);
            return y;
        }
        """
        counterexample = check(source).find_counterexample()
        assert counterexample is not None
        assert counterexample.inputs["x"] > 10

    def test_assume_restricts_search(self):
        source = """
        int main(int x) {
            assume(x >= 0);
            assume(x < 5);
            assert(x != 3);
            return x;
        }
        """
        counterexample = check(source).find_counterexample()
        assert counterexample is not None
        assert counterexample.inputs["x"] == 3

        safe = """
        int main(int x) {
            assume(x >= 0);
            assume(x < 3);
            assert(x != 3);
            return x;
        }
        """
        assert check(safe).find_counterexample() is None

    def test_loop_unrolling_finds_bug_in_later_iteration(self):
        source = """
        int main(int n) {
            assume(n >= 0);
            assume(n <= 8);
            int i = 0;
            int total = 0;
            while (i < n) {
                total = total + 2;
                i = i + 1;
            }
            assert(total != 10);
            return total;
        }
        """
        counterexample = check(source, unwind=10).find_counterexample()
        assert counterexample is not None
        assert counterexample.inputs["n"] == 5

    def test_function_calls_inlined(self):
        source = """
        int twice(int v) { return v + v; }
        int main(int x) {
            int y = twice(twice(x));
            assert(y != 20);
            return y;
        }
        """
        counterexample = check(source).find_counterexample()
        assert counterexample is not None
        assert counterexample.inputs["x"] == 5

    def test_early_return_paths(self):
        source = """
        int classify(int v) {
            if (v < 0) { return 0; }
            if (v == 0) { return 1; }
            return 2;
        }
        int main(int x) {
            int kind = classify(x);
            assert(kind != 1);
            return kind;
        }
        """
        counterexample = check(source).find_counterexample()
        assert counterexample is not None
        assert counterexample.inputs["x"] == 0

    def test_nondet_values_extracted(self):
        source = """
        int main(int x) {
            int secret = nondet();
            assert(x + secret != 9);
            return x;
        }
        """
        counterexample = check(source).find_counterexample()
        assert counterexample is not None
        assert (counterexample.inputs["x"] + counterexample.nondet_values[0]) % (1 << 16) == 9

    def test_global_arrays(self):
        source = """
        int limits[3] = {5, 10, 15};
        int main(int i) {
            assume(i >= 0);
            assume(i < 3);
            assert(limits[i] != 10);
            return limits[i];
        }
        """
        counterexample = check(source).find_counterexample()
        assert counterexample is not None
        assert counterexample.inputs["i"] == 1

    def test_no_assertions_means_safe(self):
        source = "int main(int x) { return x + 1; }"
        assert check(source).find_counterexample() is None
