"""Tests for repro.obs: metrics math, span stitching, trace propagation.

The histogram tests pin the percentile-estimate contract (inclusive ``le``
bucket boundaries, linear interpolation, the empty and single-sample edge
cases); the tracing tests pin the cross-process contract (one trace_id
stitches the serve frontend, worker subprocesses and the solver spans) and
the compatibility contract of the profile keys the span migration took
over from PR 8's hand-rolled timers.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

import pytest

from repro import obs
from repro.core.session import LocalizationSession
from repro.lang import parse_program
from repro.lang.interp import Interpreter
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.spec import Specification

CLASSIFY = (
    "int classify(int x) {\n"
    "    int big = 0;\n"
    "    if (x > 7) {\n"  # bug: spec wants threshold 10
    "        big = 1;\n"
    "    }\n"
    "    return big;\n"
    "}\n"
    "int main(int x) { return classify(x); }\n"
)


def classify_failing_tests():
    program = parse_program(CLASSIFY, name="classify")
    interpreter = Interpreter(program)
    failing = []
    for x in range(16):
        expected = 1 if x > 10 else 0
        if interpreter.run([x]).return_value != expected:
            failing.append(([x], Specification.return_value(expected)))
    assert failing
    return program, failing


# ------------------------------------------------------------------ metrics


class TestHistogram:
    def test_bucket_boundaries_are_inclusive(self):
        # Prometheus ``le`` semantics: a sample equal to a bound lands in
        # that bound's bucket, not the next one.
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (1.0, 2.0, 4.0):
            hist.observe(value)
        rendered = "\n".join(hist.render())
        assert 'h_bucket{le="1"} 1' in rendered
        assert 'h_bucket{le="2"} 2' in rendered
        assert 'h_bucket{le="4"} 3' in rendered
        assert 'h_bucket{le="+Inf"} 3' in rendered
        assert "h_count 3" in rendered

    def test_sample_above_all_bounds_lands_in_inf(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(100.0)
        rendered = "\n".join(hist.render())
        assert 'h_bucket{le="1"} 0' in rendered
        assert 'h_bucket{le="+Inf"} 1' in rendered

    def test_percentiles_on_known_distribution(self):
        # 100 samples spread uniformly through (0, 10] with bounds every
        # 1.0: the p-th percentile interpolates to ~p/10.
        hist = Histogram("h", buckets=tuple(float(b) for b in range(1, 11)))
        for i in range(1, 101):
            hist.observe(i / 10.0)
        assert hist.percentile(50) == pytest.approx(5.0, abs=0.1)
        assert hist.percentile(95) == pytest.approx(9.5, abs=0.1)
        assert hist.percentile(100) == pytest.approx(10.0, abs=0.1)

    def test_interpolation_within_a_bucket(self):
        # All 4 samples in the (1, 2] bucket: p50 is the 2nd of 4 ranks,
        # half way through the bucket's count → 1.0 + (2/4) * 1.0.
        hist = Histogram("h", buckets=(1.0, 2.0))
        for value in (1.2, 1.4, 1.6, 1.8):
            hist.observe(value)
        assert hist.percentile(50) == pytest.approx(1.5)

    def test_empty_histogram_has_no_percentile(self):
        hist = Histogram("h", buckets=(1.0,))
        assert hist.percentile(50) is None
        assert hist.percentile(95) is None
        assert hist.count == 0

    def test_single_sample(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        hist.observe(1.5)
        # Every percentile lands in the single occupied bucket (1, 2].
        for p in (0, 50, 95, 100):
            value = hist.percentile(p)
            assert 1.0 <= value <= 2.0, (p, value)

    def test_inf_bucket_percentile_clamps_to_highest_bound(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(50.0)
        assert hist.percentile(95) == 1.0

    def test_percentile_range_validated(self):
        hist = Histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError):
            hist.percentile(101)


class TestRegistry:
    def test_counter_gauge_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(7)
        registry.gauge("g").dec(2)
        assert registry.counter("c").value == 3
        assert registry.gauge("g").value == 5
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.histogram("h") is registry.histogram("h")
        labelled = registry.counter("c", labels={"op": "x"})
        assert labelled is not registry.counter("c")
        with pytest.raises(TypeError):
            registry.gauge("c")

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("repro_reqs", "requests").inc(2)
        registry.counter("repro_reqs", labels={"op": "stats"}).inc()
        registry.histogram("repro_lat", buckets=(0.5,)).observe(0.1)
        text = registry.render_prometheus()
        # Counter headers carry the ``_total`` suffix of their samples —
        # text-format parsers group samples by the TYPE-line name.
        assert "# TYPE repro_reqs_total counter" in text
        assert "# HELP repro_reqs_total requests" in text
        assert "repro_reqs_total 2" in text
        assert 'repro_reqs_total{op="stats"} 1' in text
        assert "# TYPE repro_lat histogram" in text
        assert 'repro_lat_bucket{le="0.5"} 1' in text
        assert "repro_lat_count 1" in text
        # One TYPE header per family even with labelled children.
        assert text.count("# TYPE repro_reqs_total counter") == 1

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["c"] == 1
        assert snap["h"]["count"] == 1
        assert snap["h"]["p50"] is not None


# ------------------------------------------------------------------- spans


class TestSpans:
    def test_disabled_span_still_times(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert obs.tracing_mode() == "off"
        with obs.trace("root") as handle:
            with obs.span("work") as span:
                pass
        assert span.duration >= 0.0
        assert handle.spans() == []
        assert obs.current_context() is None

    def test_nesting_and_attributes(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "on")
        with obs.trace("root") as handle:
            with obs.span("outer", k=1):
                with obs.span("inner") as inner:
                    inner.set(extra=True)
        spans = {s["name"]: s for s in handle.spans()}
        assert set(spans) == {"root", "outer", "inner"}
        assert spans["outer"]["parent_id"] == spans["root"]["span_id"]
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["outer"]["attrs"] == {"k": 1}
        assert spans["inner"]["attrs"] == {"extra": True}
        assert all(s["trace_id"] == handle.trace_id for s in spans.values())
        assert all(s["dur_us"] >= 0 for s in spans.values())

    def test_sibling_spans_share_parent(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "on")
        with obs.trace("root") as handle:
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        spans = {s["name"]: s for s in handle.spans()}
        assert spans["a"]["parent_id"] == spans["root"]["span_id"]
        assert spans["b"]["parent_id"] == spans["root"]["span_id"]

    def test_error_annotation(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "on")
        with obs.trace("root") as handle:
            with pytest.raises(RuntimeError):
                with obs.span("bad"):
                    raise RuntimeError("boom")
        bad = next(s for s in handle.spans() if s["name"] == "bad")
        assert bad["error"] == "RuntimeError"

    def test_remote_trace_roundtrip(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "on")
        with obs.trace("root") as handle:
            ctx = obs.current_context()
            with obs.remote_trace(ctx) as bundle:
                with obs.span("remote.work"):
                    pass
            assert len(bundle.spans) == 1
            assert obs.merge_spans(ctx[0], bundle.spans) == 1
            # The parent's own context survives the same-process shadowing.
            assert obs.current_context() == ctx
        names = [s["name"] for s in handle.spans()]
        assert names.count("remote.work") == 1

    def test_merge_after_close_is_dropped(self):
        assert obs.merge_spans("deadbeef", [{"name": "late"}]) == 0

    def test_valid_trace_id(self):
        assert obs.valid_trace_id(obs.new_trace_id())
        assert obs.valid_trace_id("deadbeef")
        for bad in (
            "../../etc/passwd",
            "DEADBEEF",  # case-sensitive: only what new_trace_id mints
            "abc",  # too short
            "f" * 33,  # too long
            "dead beef",
            "",
            7,
            None,
        ):
            assert not obs.valid_trace_id(bad), bad

    def test_concurrent_remote_shards_non_lifo_exit(self, monkeypatch):
        # Two same-process shards of one trace exiting out of order must
        # not leave a stale, finished collector in the registry — a late
        # merge has to land in the parent's live collector.
        monkeypatch.setenv("REPRO_TRACE", "on")
        with obs.trace("root") as handle:
            ctx = obs.current_context()
            first = obs.remote_trace(ctx)
            second = obs.remote_trace(ctx)
            first.__enter__()
            second.__enter__()
            first.__exit__(None, None, None)
            second.__exit__(None, None, None)
            assert obs.collector_for(handle.trace_id) is handle.collector
            late = {"name": "late", "trace_id": handle.trace_id}
            assert obs.merge_spans(handle.trace_id, [late]) == 1
        assert any(s["name"] == "late" for s in handle.spans())

    def test_request_trace_is_explicit(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "on")
        request = obs.start_request_trace("serve.op", op="stats")
        # No thread-local binding: the event loop thread stays clean.
        assert obs.current_context() is None
        with obs.bind_trace(request.ctx):
            with obs.span("inner"):
                pass
        request.finish()
        spans = {s["name"]: s for s in request.collector.spans()}
        assert set(spans) == {"serve.op", "inner"}
        assert spans["inner"]["parent_id"] == spans["serve.op"]["span_id"]

    def test_profile_side_table(self):
        class Carrier:
            pass

        carrier = Carrier()
        obs.attach_profile(carrier, {"backend": "c"})
        assert obs.profile_of(carrier) == {"backend": "c"}
        assert obs.profile_of(object()) == {}


# ----------------------------------------------------------------- export


class TestChromeExport:
    def test_roundtrip_is_valid(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE", "export")
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        with obs.trace("root") as handle:
            with obs.span("child"):
                pass
        assert handle.export_path is not None
        document = json.loads((tmp_path / f"{handle.trace_id}.trace.json").read_text())
        assert obs.validate_chrome_trace(document) == []
        names = {event["name"] for event in document["traceEvents"]}
        assert names == {"root", "child"}
        assert document["otherData"]["trace_id"] == handle.trace_id
        log_lines = (tmp_path / "traces.jsonl").read_text().strip().splitlines()
        record = json.loads(log_lines[-1])
        assert record["trace_id"] == handle.trace_id
        assert record["spans"] == 2

    def test_hostile_trace_id_cannot_escape_export_dir(self, tmp_path):
        # Defense in depth behind the frontend's wire-id validation: even a
        # collector holding a path-shaped id must write inside the trace dir.
        from repro.obs.export import export_trace
        from repro.obs.trace import TraceCollector

        out_dir = tmp_path / "inner" / "traces"
        collector = TraceCollector("../../escape")
        collector.add(
            {
                "trace_id": "../../escape",
                "span_id": "aabbccdd",
                "parent_id": None,
                "name": "root",
                "ts_us": 0,
                "dur_us": 1,
                "pid": 1,
                "tid": 1,
            }
        )
        path = export_trace(collector, root_name="root", directory=str(out_dir))
        assert path is not None
        assert Path(path).resolve().parent == out_dir.resolve()
        assert not (tmp_path / "escape.trace.json").exists()
        assert obs.validate_chrome_trace(json.loads(Path(path).read_text())) == []

    def test_validator_rejects_malformed(self):
        assert obs.validate_chrome_trace([]) != []
        assert obs.validate_chrome_trace({}) != []
        assert obs.validate_chrome_trace({"traceEvents": [{}]}) != []
        missing_dur = {
            "traceEvents": [{"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 1}]
        }
        assert any("dur" in p for p in obs.validate_chrome_trace(missing_dur))


# ------------------------------------------------------- session integration


class TestSessionTracing:
    def test_encode_profile_keys_unchanged(self):
        # Satellite contract: the span migration must not move the profile
        # schema PR 8 established — BENCH_table3.json's encode_phase_*
        # fields and the serve stats keys are derived from these.
        program, failing = classify_failing_tests()
        with LocalizationSession(program) as session:
            session.localize(*failing[0])
            profile = session.last_request_profile
            encode_profile = session.compiled.encode_profile()
        assert set(encode_profile) == {"encode_backend", "encode_phases"}
        assert set(encode_profile["encode_phases"]) >= {
            "analysis",
            "gates",
            "materialize",
        }
        for key in (
            "sat_calls",
            "propagations",
            "conflicts",
            "encode_backend",
            "encode_phase_analysis",
            "encode_phase_gates",
            "encode_phase_materialize",
        ):
            assert key in profile, key

    def test_localize_span_tree(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "on")
        program, failing = classify_failing_tests()
        with obs.trace("request") as handle:
            with LocalizationSession(program) as session:
                session.localize(*failing[0])
                profile = session.last_request_profile
        spans = {s["name"]: s for s in handle.spans()}
        assert {"bmc.compile", "session.localize", "solve.comss"} <= set(spans)
        assert spans["solve.comss"]["parent_id"] == spans["session.localize"]["span_id"]
        assert spans["session.localize"]["trace_id"] == handle.trace_id
        # The solver-effort attributes ride the solve span.
        assert spans["solve.comss"]["attrs"]["sat_calls"] > 0
        # And the request profile names the trace it ran under.
        assert profile["trace_id"] == handle.trace_id

    def test_trace_propagates_through_process_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "on")
        program, failing = classify_failing_tests()
        with obs.trace("batch") as handle:
            with LocalizationSession(program) as session:
                session.localize_batch(failing, executor="process", workers=2)
        spans = handle.spans()
        assert {s["trace_id"] for s in spans} == {handle.trace_id}
        # Worker subprocesses contributed spans under the parent's root.
        assert len({s["pid"] for s in spans}) >= 2
        by_id = {s["span_id"]: s for s in spans}
        shard_spans = [s for s in spans if s["name"] == "pool.shard"]
        assert shard_spans
        for shard in shard_spans:
            assert by_id[shard["parent_id"]]["name"] == "batch"
        localize_spans = [s for s in spans if s["name"] == "session.localize"]
        assert len(localize_spans) == len(failing)
        for span in localize_spans:
            assert by_id[span["parent_id"]]["name"] == "pool.shard"

    def test_pool_untraced_when_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        program, failing = classify_failing_tests()
        with obs.trace("batch") as handle:
            with LocalizationSession(program) as session:
                ranked = session.localize_batch(
                    failing, executor="process", workers=2
                )
        assert handle.spans() == []
        assert ranked.ranked_lines


# --------------------------------------------------------- serve integration


@pytest.fixture(scope="module")
def serve_thread():
    from repro.serve import ServerThread

    with ServerThread(workers=2) as thread:
        yield thread


class TestServeObservability:
    def _client(self, serve_thread):
        from repro.serve import Client

        host, port = serve_thread.tcp_address
        return Client(tcp=(host, port))

    def test_response_carries_trace_id(self, serve_thread):
        with self._client(serve_thread) as client:
            client.wait_until_ready()
            reply = client.localize(
                program=CLASSIFY,
                test=[9],
                spec={"kind": "return-value", "expected": [0]},
            )
        assert reply["ok"]
        assert isinstance(reply["trace_id"], str) and reply["trace_id"]

    def test_client_supplied_trace_id_is_adopted(self, serve_thread):
        with self._client(serve_thread) as client:
            client.wait_until_ready()
            reply = client.stats()
            assert reply["trace_id"]
            chosen = obs.new_trace_id()
            reply = client.request({"op": "stats", "trace_id": chosen})
        assert reply["trace_id"] == chosen

    def test_malformed_wire_trace_id_is_not_adopted(self, serve_thread):
        # A path-shaped (or otherwise malformed) wire id names the export
        # file, so the frontend mints a fresh id instead of adopting it.
        with self._client(serve_thread) as client:
            client.wait_until_ready()
            reply = client.request({"op": "stats", "trace_id": "../../evil"})
        assert reply["trace_id"] != "../../evil"
        assert obs.valid_trace_id(reply["trace_id"])

    def test_cancelled_request_still_unregisters_collector(self, monkeypatch):
        # A client disconnect surfaces as CancelledError (a BaseException)
        # inside the handler; the request trace must still be finished or
        # its collector leaks in the process-global registry forever.
        monkeypatch.setenv("REPRO_TRACE", "on")
        from repro.obs.trace import _ACTIVE
        from repro.serve.server import LocalizationServer

        server = LocalizationServer(workers=1)

        async def cancelled_handler(request, trace_ctx):
            raise asyncio.CancelledError

        monkeypatch.setattr(server, "_op_stats", cancelled_handler)
        before = dict(_ACTIVE)
        with pytest.raises(asyncio.CancelledError):
            asyncio.run(server._dispatch({"op": "stats"}))
        assert _ACTIVE == before

    def test_stats_snapshot_seq_and_window(self, serve_thread):
        with self._client(serve_thread) as client:
            client.wait_until_ready()
            first = client.stats()
            second = client.stats()
        assert second["snapshot_seq"] == first["snapshot_seq"] + 1
        # Cumulative keys unchanged (compat contract)...
        for section in ("server", "store", "result_cache", "pool"):
            assert section in first
        assert "requests_served" in first["server"]
        # ...and the window closes over exactly the inter-poll interval:
        # the second poll saw at least its own stats request arrive.
        window = second["window"]
        assert window["seconds"] >= 0
        assert window["deltas"]["server.requests_served"] >= 1
        # Deltas never include non-counter noise.
        assert "server.uptime_seconds" not in window["deltas"]

    def test_metrics_op(self, serve_thread):
        with self._client(serve_thread) as client:
            client.wait_until_ready()
            client.localize(
                program=CLASSIFY,
                test=[8],
                spec={"kind": "return-value", "expected": [0]},
            )
            reply = client.metrics()
        text = reply["metrics"]
        assert "# TYPE repro_serve_requests_total counter" in text
        assert 'repro_serve_requests_total{op="localize"}' in text
        assert "repro_serve_request_seconds_bucket" in text
        snapshot = reply["snapshot"]
        assert snapshot['repro_serve_requests{op="localize"}'] >= 1
        assert any(key.startswith("repro_store_") for key in snapshot)
        assert any(key.startswith("repro_pool_") for key in snapshot)

    def test_stitched_trace_exports_valid_chrome_json(
        self, serve_thread, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_TRACE", "export")
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        with self._client(serve_thread) as client:
            client.wait_until_ready()
            reply = client.localize(
                program=CLASSIFY + "// traced variant\n",
                test=[10],
                spec={"kind": "return-value", "expected": [0]},
            )
        assert reply["ok"]
        document = json.loads(open(reply["trace_path"]).read())
        assert obs.validate_chrome_trace(document) == []
        events = document["traceEvents"]
        names = {event["name"] for event in events}
        assert {"serve.localize", "serve.shard", "worker.shard", "session.localize"} <= names
        # The trace crosses the daemon/worker process boundary.
        assert len({event["pid"] for event in events}) >= 2
        # One stitched tree: every span reaches the frontend root.
        by_id = {event["args"]["span_id"]: event for event in events}
        for event in events:
            current = event
            for _ in range(len(events)):
                parent = current["args"].get("parent_id")
                if parent is None:
                    break
                current = by_id[parent]
            assert current["name"] == "serve.localize", event["name"]
