"""The `repro.analysis` subsystem: lattice, linter, and the two encoders.

Three layers of guarantees:

* unit tests for the interval lattice and the bit-narrowing plan;
* the diagnostics engine on crafted programs (every lint code fires with
  the right line, clean programs stay clean, front-end failures come back
  as structured ERROR diagnostics instead of exceptions);
* the differential gates the ISSUE demands — `analysis_narrowing` on vs
  off must produce identical fault-candidate line sets on every Table 3
  program (with a real clause-count reduction on tot_info), and static
  soft-clause pruning must not change any report while shrinking the
  relaxable soft set.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    ERROR,
    WARNING,
    Interval,
    analyze_program,
    analyze_source,
    width_bounds,
)
from repro.lang import parse_program

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"


# ------------------------------------------------------------------ intervals


class TestIntervalLattice:
    def test_width_bounds_16(self):
        assert width_bounds(16) == (-32768, 32767)

    def test_join_meet(self):
        a = Interval(2, 5)
        b = Interval(4, 9)
        assert a.join(b) == Interval(2, 9)
        assert a.meet(b) == Interval(4, 5)
        assert a.meet(Interval(7, 9)).empty

    def test_bottom_is_identity_for_join(self):
        a = Interval(-3, 3)
        assert Interval.bottom().join(a) == a
        assert a.join(Interval.bottom()) == a

    def test_wrapping_add(self):
        # A constant sum wraps to the exact wrapped constant...
        big = Interval(30000, 30000)
        assert big.add(big, 16) == Interval.const(-5536, 16)
        # ...while a range straddling the wrap boundary loses all precision.
        wide = Interval(0, 30000)
        assert wide.add(wide, 16).is_top(16)

    def test_const_arithmetic_stays_const(self):
        assert Interval.const(6, 16).mul(Interval.const(7, 16), 16) == Interval.const(42, 16)
        assert Interval.const(7, 16).div(Interval.const(2, 16), 16) == Interval.const(3, 16)
        assert Interval.const(-7, 16).div(Interval.const(2, 16), 16) == Interval.const(-3, 16)

    def test_overflows_is_definite_not_possible(self):
        maybe = Interval(0, 30000)
        assert not maybe.overflows(maybe, "+", 16)
        always = Interval(30000, 30000)
        assert always.overflows(always, "+", 16)

    def test_narrowing_plan_small_unsigned_range(self):
        plan = Interval(0, 7).narrowing_plan(16)
        assert plan is not None
        low_bits, signed = plan
        assert low_bits < 16 and not signed
        # The planned low bits (minus the margin) still cover the range.
        assert (1 << (low_bits - 1)) - 1 >= 7 or low_bits >= 5

    def test_narrowing_plan_signed_range(self):
        plan = Interval(-4, 4).narrowing_plan(16)
        assert plan is not None
        low_bits, signed = plan
        assert signed and low_bits < 16

    def test_narrowing_plan_top_is_none(self):
        assert Interval.top(16).narrowing_plan(16) is None
        assert Interval.bottom().narrowing_plan(16) is None


# ----------------------------------------------------------------- diagnostics


LINT_DEMO = (EXAMPLES / "lint_demo.mc").read_text()


class TestLintDiagnostics:
    def test_every_code_fires_with_its_line(self):
        result = analyze_source(LINT_DEMO, name="lint_demo.mc")
        by_code = {d.code: d for d in result.diagnostics}
        assert by_code["dead-store"].line == 5
        assert by_code["dead-store"].severity == WARNING
        assert by_code["uninitialized-read"].line == 8
        assert by_code["uninitialized-read"].severity == WARNING
        assert by_code["overflow"].line == 10
        assert by_code["const-div-by-zero"].line == 11
        assert by_code["const-div-by-zero"].severity == ERROR
        assert by_code["always-OOB"].line == 12
        assert by_code["dead-code"].line == 17
        assert result.has_errors

    def test_dead_store_overwritten_before_read(self):
        source = (
            "int main(int x) {\n"
            "    int y = x * 2;\n"
            "    y = x + 1;\n"
            "    return y;\n"
            "}\n"
        )
        result = analyze_source(source)
        dead = [d for d in result.diagnostics if d.code == "dead-store"]
        assert [d.line for d in dead] == [2]

    def test_branch_read_keeps_store_alive(self):
        source = (
            "int main(int x) {\n"
            "    int y = x * 2;\n"
            "    if (x > 0) {\n"
            "        return y;\n"
            "    }\n"
            "    return 0;\n"
            "}\n"
        )
        result = analyze_source(source)
        assert not any(d.code == "dead-store" for d in result.diagnostics)

    def test_global_store_is_never_dead(self):
        source = (
            "int g = 0;\n"
            "int main(int x) {\n"
            "    g = x;\n"
            "    return 0;\n"
            "}\n"
        )
        result = analyze_source(source)
        assert not any(d.code == "dead-store" for d in result.diagnostics)

    def test_call_on_rhs_is_not_reported(self):
        source = (
            "int bump(int v) { return v + 1; }\n"
            "int main(int x) {\n"
            "    int y = bump(x);\n"
            "    return 0;\n"
            "}\n"
        )
        result = analyze_source(source)
        assert not any(d.code == "dead-store" for d in result.diagnostics)

    def test_loop_carried_update_is_live(self):
        source = (
            "int main(int n) {\n"
            "    int i = 0;\n"
            "    while (i < n) {\n"
            "        i = i + 1;\n"
            "    }\n"
            "    return n;\n"
            "}\n"
        )
        result = analyze_source(source)
        # The loop increment reads its own previous value; only a store the
        # liveness pass can prove unread would be flagged, and none is.
        assert not any(d.code == "dead-store" for d in result.diagnostics)

    def test_clean_program_has_no_diagnostics(self):
        source = (EXAMPLES / "saturating_mix.mc").read_text()
        result = analyze_source(source, name="saturating_mix.mc")
        assert result.diagnostics == ()
        assert not result.has_errors

    def test_parse_error_becomes_error_diagnostic(self):
        result = analyze_source("int main( {\n", name="broken.mc")
        assert result.has_errors
        assert result.diagnostics[0].severity == ERROR
        assert result.diagnostics[0].line >= 1

    def test_type_error_becomes_error_diagnostic(self):
        result = analyze_source(
            "int main(int x) {\n    return missing(x);\n}\n", name="typeerr.mc"
        )
        assert result.has_errors
        assert any(d.severity == ERROR for d in result.diagnostics)

    def test_guarded_division_is_not_reported(self):
        source = (
            "int main(int x) {\n"
            "    int d = 0;\n"
            "    if (x > 0) {\n"
            "        d = x;\n"
            "    }\n"
            "    if (d > 0) {\n"
            "        return 100 / d;\n"
            "    }\n"
            "    return 0;\n"
            "}\n"
        )
        result = analyze_source(source)
        assert not any(d.code == "const-div-by-zero" for d in result.diagnostics)

    def test_observed_ranges_feed_the_narrowing_tables(self):
        source = (
            "int main(int x) {\n"
            "    assume(x >= 0);\n"
            "    assume(x <= 10);\n"
            "    int y = x + 5;\n"
            "    return y;\n"
            "}\n"
        )
        program = parse_program(source, name="ranges")
        result = analyze_program(program)
        interval = result.write_interval("main", 4)
        assert interval is not None
        assert interval.lo >= 0 and interval.hi <= 15
        flow = result.flow_write_interval("main", 4)
        assert flow is not None
        # The flow-insensitive table may be wider but never narrower than
        # the value interval of the actual writes.
        assert flow.lo <= interval.lo and flow.hi >= interval.hi


# ------------------------------------------------------------------------ CLI


def _run_cli(*args: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO),
    )


class TestCli:
    def test_lint_demo_exits_nonzero_with_structured_lines(self):
        result = _run_cli("examples/lint_demo.mc")
        assert result.returncode == 1
        assert "examples/lint_demo.mc:11: error: [const-div-by-zero]" in result.stdout
        assert "examples/lint_demo.mc:8: warning: [uninitialized-read]" in result.stdout
        assert "examples/lint_demo.mc:5: warning: [dead-store]" in result.stdout

    def test_clean_program_exits_zero_quietly(self):
        result = _run_cli("examples/saturating_mix.mc")
        assert result.returncode == 0
        assert result.stdout.strip() == ""

    def test_json_mode(self):
        result = _run_cli("--json", "examples/lint_demo.mc")
        payload = json.loads(result.stdout)
        assert payload[0]["ok"] is False
        codes = {d["code"] for d in payload[0]["diagnostics"]}
        assert "always-OOB" in codes and "dead-code" in codes
        assert all(isinstance(d["line"], int) for d in payload[0]["diagnostics"])


# ---------------------------------------------------- compile-time consumers


class TestCompiledProgramIntegration:
    def test_compile_carries_diagnostics_and_pruned_lines(self):
        from repro.bmc import BoundedModelChecker

        source = (
            "int main(int x) {\n"
            "    int unused = x * 2;\n"
            "    int y = x + 1;\n"
            "    assert(y != 5);\n"
            "    return y;\n"
            "}\n"
        )
        program = parse_program(source, name="pruned")
        compiled = BoundedModelChecker(program).compile_program()
        # Line 2 writes a variable nothing observable ever reads.
        assert 2 in compiled.pruned_lines
        assert 3 not in compiled.pruned_lines
        assert isinstance(compiled.diagnostics, tuple)

    def test_bmc_narrowing_counts_pinned_bits(self):
        from repro.bmc import BoundedModelChecker

        # BMC analysis runs over ALL inputs (no entry values), so narrowing
        # only fires on values the program itself bounds, like this flag.
        source = (
            "int main(int x) {\n"
            "    int flag = 0;\n"
            "    if (x > 0) {\n"
            "        flag = 1;\n"
            "    }\n"
            "    int bump = flag + 1;\n"
            "    assert(bump <= 2);\n"
            "    return bump;\n"
            "}\n"
        )
        program = parse_program(source, name="narrowed")
        narrowed = BoundedModelChecker(program, analysis_narrowing=True).compile_program()
        plain = BoundedModelChecker(program, analysis_narrowing=False).compile_program()
        assert narrowed.narrowed_vars > 0
        assert plain.narrowed_vars == 0

    @pytest.mark.parametrize("narrowing", [True, False])
    def test_bmc_localization_identical_with_and_without_narrowing(self, narrowing):
        """The narrowed program-mode encoding blames the same lines."""
        from repro.core.localizer import BugAssistLocalizer
        from repro.spec import Specification

        source = (
            "int main(int in) {\n"
            "    assume(in >= 0);\n"
            "    assume(in <= 20);\n"
            "    int doubled = in * 2;\n"
            "    int shifted = doubled + 3;\n"
            "    return shifted;\n"
            "}\n"
        )
        program = parse_program(source, name="bmc-diff")
        localizer = BugAssistLocalizer(program, mode="program")
        localizer_checker_kwargs = {"analysis_narrowing": narrowing}
        from repro.bmc import BoundedModelChecker

        checker = BoundedModelChecker(
            program, width=localizer.width, unwind=localizer.unwind,
            group_statements=True, **localizer_checker_kwargs,
        )
        formula = checker.encode_program_formula([4], Specification.return_value(12))
        report = localizer.localize_trace(formula)
        # in=4 → shifted = 11, expected 12: either arithmetic line or the
        # return itself can be blamed, identically in both modes.
        assert set(report.lines) == {4, 5, 6}

    def test_static_pruning_does_not_change_the_report(self):
        from repro.core.session import LocalizationSession
        from repro.spec import Specification

        source = (
            "int scratch[4];\n"
            "int main(int x) {\n"
            "    scratch[0] = x * 7;\n"
            "    int y = x + 1;\n"
            "    int z = y * 2;\n"
            "    assert(z != 6);\n"
            "    return z;\n"
            "}\n"
        )
        program = parse_program(source, name="prune-diff")
        reports = {}
        for pruning in (True, False):
            session = LocalizationSession(program, static_pruning=pruning)
            reports[pruning] = session.localize([2], Specification.assertion())
        assert reports[True].lines == reports[False].lines
        assert [c.lines for c in reports[True].candidates] == [
            c.lines for c in reports[False].candidates
        ]
        # The write to scratch[0] can never reach the assertion: pruned.
        assert 3 not in reports[True].lines


# ------------------------------------------------- Table 3 differential gate


def _reduced_trace(benchmark, narrowing: bool):
    from repro.concolic import ConcolicTracer
    from repro.reduction import sliced_tracer_settings

    faulty = benchmark.faulty_program()
    settings: dict[str, object] = {}
    if "S" in benchmark.reduction:
        settings = sliced_tracer_settings(faulty)
    concrete = set(settings.get("concrete_functions", ()))
    if "C" in benchmark.reduction:
        concrete |= set(benchmark.concretize)
    tracer = ConcolicTracer(
        faulty,
        relevant_lines=settings.get("relevant_lines"),
        concrete_functions=concrete,
        analysis_narrowing=narrowing,
    )
    return faulty, tracer.trace(list(benchmark.failing_test), benchmark.specification())


def _table3_benchmarks():
    from repro.siemens.programs import LARGE_BENCHMARKS

    return LARGE_BENCHMARKS


@pytest.mark.parametrize("benchmark_case", _table3_benchmarks(), ids=lambda b: b.name)
def test_table3_narrowing_differential(benchmark_case):
    """Identical fault-candidate sets with analysis_narrowing on vs off."""
    from repro.core.localizer import BugAssistLocalizer

    lines = {}
    clauses = {}
    for narrowing in (True, False):
        faulty, trace = _reduced_trace(benchmark_case, narrowing)
        clauses[narrowing] = trace.num_clauses
        localizer = BugAssistLocalizer(faulty, mode="trace", max_candidates=8)
        lines[narrowing] = set(
            localizer.localize_trace(trace, program_name=benchmark_case.name).lines
        )
    assert lines[True] == lines[False], benchmark_case.name
    assert clauses[True] <= clauses[False], benchmark_case.name
    if benchmark_case.name == "tot_info":
        # The acceptance row: a measurable clause reduction, not a wash.
        assert clauses[False] - clauses[True] > 1000


def test_concolic_interpreter_semantics_unchanged_by_narrowing():
    """Concrete execution results are independent of the narrowing option."""
    from repro.concolic import ConcolicTracer
    from repro.siemens.programs import TOT_INFO

    faulty = TOT_INFO.faulty_program()
    spec = TOT_INFO.specification()
    test = list(TOT_INFO.failing_test)
    on = ConcolicTracer(faulty, analysis_narrowing=True).trace(test, spec)
    off = ConcolicTracer(faulty, analysis_narrowing=False).trace(test, spec)
    assert on.test_inputs == off.test_inputs
    assert on.assertion_description == off.assertion_description
    assert on.num_assignments == off.num_assignments
    assert on.narrowed_vars > 0 and off.narrowed_vars == 0


# ------------------------------------------------------------- golden corpus


def test_siemens_corpus_matches_golden_lint():
    """The whole corpus lints exactly as the checked-in golden file says.

    The corpus programs must stay diagnostic-free (seeded faults are wrong
    answers, not lint defects — a new finding is a false-positive
    regression), while the example programs pin the expected positives.
    """
    result = subprocess.run(
        [sys.executable, str(REPO / "benchmarks" / "lint_siemens_corpus.py")],
        capture_output=True,
        text=True,
        cwd=str(REPO),
    )
    assert result.returncode == 0, result.stdout + result.stderr
