"""Tests for the mini-C front-end: lexer, parser, type checker, interpreter."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import (
    Interpreter,
    ParseError,
    RuntimeBudgetExceeded,
    TypeCheckError,
    check_program,
    parse_program,
)
from repro.lang import ast
from repro.lang.lexer import LexError, tokenize
from repro.lang.pretty import format_program
from repro.lang.semantics import apply_binary, apply_unary, wrap
from repro.lang.transform import (
    constants_on_line,
    operators_on_line,
    replace_constant_on_line,
    replace_operator_on_line,
)

MAX_PROGRAM = """
int max3(int a, int b, int c) {
    int best = a;
    if (b > best) { best = b; }
    if (c > best) { best = c; }
    return best;
}

int main(int x, int y, int z) {
    return max3(x, y, z);
}
"""

LOOP_PROGRAM = """
int main(int n) {
    int total = 0;
    int i = 0;
    while (i < n) {
        total = total + i;
        i = i + 1;
    }
    assert(total >= 0);
    return total;
}
"""


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize("int x = 42; // comment\n x <= 3")
        kinds = [(token.kind, token.text) for token in tokens]
        assert ("keyword", "int") in kinds
        assert ("ident", "x") in kinds
        assert ("int", "42") in kinds
        assert ("symbol", "<=") in kinds
        assert kinds[-1] == ("eof", "")

    def test_line_numbers(self):
        tokens = tokenize("int a;\nint b;\n")
        b_token = [token for token in tokens if token.text == "b"][0]
        assert b_token.line == 2

    def test_block_comments_skipped(self):
        tokens = tokenize("/* original: x = 1 */ x = 2;")
        texts = [token.text for token in tokens]
        assert "1" not in texts
        assert "2" in texts

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("int x = @;")


class TestParser:
    def test_parse_functions_and_globals(self):
        program = parse_program(MAX_PROGRAM)
        assert set(program.functions) == {"max3", "main"}
        assert program.functions["max3"].params == ("a", "b", "c")
        assert program.functions["main"].returns_value

    def test_statement_lines_recorded(self):
        program = parse_program(LOOP_PROGRAM)
        lines = program.statement_lines()
        # The while header and the two body assignments are distinct lines.
        assert len(lines) >= 5

    def test_global_array_with_initializer(self):
        program = parse_program("int thresholds[3] = {400, 500, 640};\nint main() { return thresholds[1]; }")
        decl = program.globals[0]
        assert isinstance(decl, ast.ArrayDecl)
        assert decl.size == 3
        assert len(decl.init) == 3

    def test_ternary_and_logical_operators(self):
        program = parse_program(
            "int main(int a, int b) { return (a > b ? a : b) && 1 || 0; }"
        )
        assert "main" in program.functions

    def test_else_if_chain(self):
        source = """
        int main(int x) {
            int result = 0;
            if (x == 1) { result = 10; }
            else if (x == 2) { result = 20; }
            else { result = 30; }
            return result;
        }
        """
        program = parse_program(source)
        interp = Interpreter(program)
        assert interp.run([2]).return_value == 20

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("int main() { int x = 1 return x; }")

    def test_unbalanced_braces(self):
        with pytest.raises(ParseError):
            parse_program("int main() { if (1) { return 0; }")

    def test_unexpected_top_level(self):
        with pytest.raises(ParseError):
            parse_program("float main() { return 0; }")

    def test_parse_error_carries_line(self):
        try:
            parse_program("int main() {\n  x = ;\n}")
        except ParseError as error:
            assert error.line == 2
        else:  # pragma: no cover
            pytest.fail("expected a ParseError")


class TestTypeChecker:
    def test_accepts_valid_program(self):
        check_program(parse_program(MAX_PROGRAM))

    def test_undeclared_variable(self):
        with pytest.raises(TypeCheckError):
            check_program(parse_program("int main() { return missing; }"))

    def test_undeclared_array(self):
        with pytest.raises(TypeCheckError):
            check_program(parse_program("int main() { return values[0]; }"))

    def test_wrong_arity_call(self):
        source = "int f(int a) { return a; } int main() { return f(1, 2); }"
        with pytest.raises(TypeCheckError):
            check_program(parse_program(source))

    def test_undefined_function(self):
        with pytest.raises(TypeCheckError):
            check_program(parse_program("int main() { return g(1); }"))

    def test_void_function_returning_value(self):
        with pytest.raises(TypeCheckError):
            check_program(parse_program("void f() { return 3; } int main() { return 0; }"))

    def test_array_used_as_scalar(self):
        source = "int a[3]; int main() { return a; }"
        with pytest.raises(TypeCheckError):
            check_program(parse_program(source))


class TestInterpreter:
    def test_max3(self):
        interp = Interpreter(parse_program(MAX_PROGRAM))
        assert interp.run([3, 9, 5]).return_value == 9
        assert interp.run([10, 2, 3]).return_value == 10

    def test_loop_sum(self):
        interp = Interpreter(parse_program(LOOP_PROGRAM))
        result = interp.run([5])
        assert result.return_value == 10
        assert result.passed

    def test_named_inputs(self):
        interp = Interpreter(parse_program(LOOP_PROGRAM))
        assert interp.run({"n": 4}).return_value == 6

    def test_wrong_input_count(self):
        interp = Interpreter(parse_program(LOOP_PROGRAM))
        with pytest.raises(ValueError):
            interp.run([1, 2])

    def test_assertion_failure_reported_with_line(self):
        source = "int main(int x) {\n    assert(x < 10);\n    return x;\n}"
        result = Interpreter(parse_program(source)).run([50])
        assert result.assertion_failed
        assert result.failed_line == 2
        assert result.failure_kind == "assertion"

    def test_assume_stops_execution(self):
        source = "int main(int x) { assume(x > 0); assert(x > 0); return x; }"
        result = Interpreter(parse_program(source)).run([-5])
        assert result.assumption_violated
        assert not result.assertion_failed

    def test_print_int_collects_outputs(self):
        source = "int main(int x) { print_int(x); print_int(x + 1); return x + 2; }"
        result = Interpreter(parse_program(source)).run([10])
        assert result.outputs == [10, 11]
        assert result.observable == (10, 11, 12)

    def test_global_state_and_arrays(self):
        source = """
        int counter = 5;
        int table[3] = {7, 8, 9};
        void bump() { counter = counter + 1; }
        int main(int i) {
            bump();
            bump();
            return table[i] + counter;
        }
        """
        result = Interpreter(parse_program(source)).run([2])
        assert result.return_value == 9 + 7

    def test_array_bounds_checked_when_enabled(self):
        source = "int a[3];\nint main(int i) {\n    return a[i];\n}"
        program = parse_program(source)
        checked = Interpreter(program, check_bounds=True).run([5])
        assert checked.assertion_failed
        assert checked.failure_kind == "array bounds"
        unchecked = Interpreter(program, check_bounds=False).run([5])
        assert unchecked.passed

    def test_short_circuit_evaluation(self):
        # Division by zero is defined as 0, but short-circuit still matters
        # for function calls with side effects.
        source = """
        int hits = 0;
        int bump() { hits = hits + 1; return 1; }
        int main(int x) {
            int ignore = (x > 0) || bump();
            int also = (x > 0) && bump();
            return hits;
        }
        """
        assert Interpreter(parse_program(source)).run([5]).return_value == 1
        assert Interpreter(parse_program(source)).run([-5]).return_value == 1

    def test_recursion(self):
        source = """
        int fact(int n) {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
        int main(int n) { return fact(n); }
        """
        assert Interpreter(parse_program(source)).run([5]).return_value == 120

    def test_step_budget(self):
        source = "int main() { while (1) { int x = 0; } return 0; }"
        with pytest.raises(RuntimeBudgetExceeded):
            Interpreter(parse_program(source), max_steps=1000).run([])

    def test_nondet_values(self):
        source = "int main() { int a = nondet(); int b = nondet(); return a + b; }"
        result = Interpreter(parse_program(source)).run([], nondet_values=[4, 6])
        assert result.return_value == 10

    def test_fixed_width_wraparound(self):
        source = "int main(int x) { return x + 1; }"
        result = Interpreter(parse_program(source), width=8).run([127])
        assert result.return_value == -128

    def test_ternary(self):
        source = "int main(int a, int b) { return a > b ? a : b; }"
        interp = Interpreter(parse_program(source))
        assert interp.run([3, 7]).return_value == 7
        assert interp.run([9, 2]).return_value == 9


class TestPrettyPrinter:
    def test_round_trip_preserves_behaviour(self):
        program = parse_program(MAX_PROGRAM)
        regenerated = parse_program(format_program(program))
        original = Interpreter(program)
        round_tripped = Interpreter(regenerated)
        for inputs in ([1, 2, 3], [9, 4, 6], [0, 0, 0], [-3, -9, -1]):
            assert original.run(inputs).return_value == round_tripped.run(inputs).return_value

    def test_round_trip_loop_program(self):
        program = parse_program(LOOP_PROGRAM)
        regenerated = parse_program(format_program(program))
        assert Interpreter(regenerated).run([6]).return_value == 15


class TestTransform:
    SOURCE = "\n".join(
        [
            "int main(int index) {",        # line 1
            "    if (index != 1) {",        # line 2
            "        index = 2;",           # line 3
            "    } else {",                 # line 4
            "        index = index + 2;",   # line 5
            "    }",
            "    return index;",
            "}",
        ]
    )

    def test_constants_on_line(self):
        program = parse_program(self.SOURCE)
        assert constants_on_line(program, 5) == [2]
        assert constants_on_line(program, 3) == [2]
        assert constants_on_line(program, 7) == []

    def test_operators_on_line(self):
        program = parse_program(self.SOURCE)
        assert operators_on_line(program, 2) == ["!="]
        assert operators_on_line(program, 5) == ["+"]

    def test_replace_constant(self):
        program = parse_program(self.SOURCE)
        patched = replace_constant_on_line(program, 5, 2, 1)
        assert Interpreter(patched).run([1]).return_value == 2
        # Original program is untouched.
        assert Interpreter(program).run([1]).return_value == 3
        # The constant on line 3 is not affected.
        assert Interpreter(patched).run([7]).return_value == 2

    def test_replace_operator(self):
        program = parse_program(self.SOURCE)
        patched = replace_operator_on_line(program, 2, "!=", "==")
        assert Interpreter(patched).run([1]).return_value == 2
        assert Interpreter(patched).run([5]).return_value == 7


class TestSemantics:
    def test_division_truncates_toward_zero(self):
        assert apply_binary("/", 7, 2) == 3
        assert apply_binary("/", -7, 2) == -3
        assert apply_binary("%", -7, 2) == -1

    def test_division_by_zero_defined(self):
        assert apply_binary("/", 5, 0) == 0
        assert apply_binary("%", 5, 0) == 5

    def test_unary(self):
        assert apply_unary("-", 5) == -5
        assert apply_unary("!", 0) == 1
        assert apply_unary("!", 17) == 0

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    @settings(max_examples=200, deadline=None)
    def test_comparisons_match_python(self, a, b):
        assert apply_binary("<", a, b) == int(a < b)
        assert apply_binary(">=", a, b) == int(a >= b)
        assert apply_binary("==", a, b) == int(a == b)

    @given(st.integers(-(2**20), 2**20))
    @settings(max_examples=200, deadline=None)
    def test_wrap_is_idempotent_and_in_range(self, value):
        wrapped = wrap(value)
        assert -(2**15) <= wrapped < 2**15
        assert wrap(wrapped) == wrapped
        assert (wrapped - value) % (2**16) == 0


@settings(max_examples=100, deadline=None)
@given(
    a=st.integers(-300, 300),
    b=st.integers(-300, 300),
    c=st.integers(-300, 300),
)
def test_interpreter_matches_python_semantics_on_max3(a, b, c):
    interp = Interpreter(parse_program(MAX_PROGRAM))
    assert interp.run([a, b, c]).return_value == max(a, b, c)


class TestTypecheckErrorPaths:
    """The semantic checks that were previously almost untested."""

    def test_duplicate_global_declarations(self):
        source = "int a = 1;\nint a[4];\nint main() { return 0; }"
        with pytest.raises(TypeCheckError, match="declared twice"):
            check_program(parse_program(source))

    def test_builtin_arity_mismatch(self):
        with pytest.raises(TypeCheckError, match="nondet"):
            check_program(parse_program("int main() { return nondet(1); }"))

    def test_assignment_to_undeclared_variable(self):
        source = "int main() {\n    ghost = 3;\n    return 0;\n}"
        with pytest.raises(TypeCheckError) as excinfo:
            check_program(parse_program(source))
        assert excinfo.value.line == 2

    def test_assignment_to_undeclared_array(self):
        with pytest.raises(TypeCheckError, match="undeclared array"):
            check_program(parse_program("int main() { ghost[0] = 1; return 0; }"))

    def test_scalar_indexed_as_array(self):
        source = "int main() {\n    int s = 1;\n    return s[0];\n}"
        with pytest.raises(TypeCheckError, match="undeclared array"):
            check_program(parse_program(source))

    def test_errors_in_nested_bodies_are_found(self):
        source = (
            "int main(int x) {\n"
            "    while (x > 0) {\n"
            "        if (x > 5) {\n"
            "            oops = 1;\n"
            "        }\n"
            "        x = x - 1;\n"
            "    }\n"
            "    return x;\n"
            "}"
        )
        with pytest.raises(TypeCheckError) as excinfo:
            check_program(parse_program(source))
        assert excinfo.value.line == 4

    def test_error_message_carries_line_prefix(self):
        with pytest.raises(TypeCheckError, match="line 1"):
            check_program(parse_program("int main() { return missing; }"))


class TestStructuredDiagnostics:
    """Front-end failures flow through the shared Diagnostic shape."""

    def test_type_error_to_diagnostic(self):
        from repro.lang.diagnostics import ERROR

        try:
            check_program(parse_program("int main() {\n    return missing;\n}"))
        except TypeCheckError as exc:
            diagnostic = exc.to_diagnostic()
        assert diagnostic.severity == ERROR
        assert diagnostic.code == "type-error"
        assert diagnostic.line == 2
        assert "missing" in diagnostic.message

    def test_parse_error_to_diagnostic(self):
        from repro.lang.diagnostics import ERROR

        with pytest.raises(ParseError) as excinfo:
            parse_program("int main() {\n    int x = ;\n}")
        diagnostic = excinfo.value.to_diagnostic()
        assert diagnostic.severity == ERROR
        assert diagnostic.code == "parse-error"
        assert diagnostic.line == 2

    def test_wire_round_trip(self):
        from repro.lang.diagnostics import Diagnostic, diagnostics_to_wire

        diagnostic = Diagnostic(
            line=7, severity="warning", code="overflow", message="m", function="f"
        )
        wire = diagnostics_to_wire([diagnostic])
        assert wire == [diagnostic.to_wire()]
        assert Diagnostic.from_wire(wire[0]) == diagnostic

    def test_render_shape(self):
        from repro.lang.diagnostics import Diagnostic

        diagnostic = Diagnostic(
            line=3, severity="error", code="type-error", message="bad", function="main"
        )
        assert diagnostic.render("prog.mc") == (
            "prog.mc:3: error: [type-error] bad in main()"
        )

    def test_unknown_severity_rejected(self):
        from repro.lang.diagnostics import Diagnostic

        with pytest.raises(ValueError):
            Diagnostic(line=1, severity="fatal", code="x", message="y")
