"""Shared pytest configuration: the ``slow`` marker and ``--runslow`` gate.

The Table 3 benchmark tests localize multi-hundred-thousand-clause trace
formulas with a pure-Python CDCL solver; they are correctness-critical but
too slow for the tier-1 loop.  They carry ``@pytest.mark.slow`` and only run
when ``--runslow`` is given — fast smoke variants cover the same code paths
in every run.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked slow (the full Table 3 benchmark protocol)",
    )


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers", "slow: slow benchmark-scale test; needs --runslow to run"
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow benchmark test: pass --runslow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
