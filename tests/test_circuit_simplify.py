"""Property-based equivalence suite for the circuit simplifier.

Random bit-vector expressions are encoded twice — with the structure-hashed
simplifier on and off — and both circuits are checked against the concrete
semantics of :mod:`repro.lang.interp` on sampled inputs, including overflow
and negative-operand cases.  The simplified encoding must agree bit for bit
with both the legacy encoding and the interpreter, and must never be
larger than the legacy one.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.encoding.circuits import CircuitBuilder
from repro.encoding.context import EncodingContext
from repro.encoding.symbolic import ExpressionEncoder
from repro.lang import ast, parse_program
from repro.lang.interp import Interpreter
from repro.lang.semantics import DEFAULT_WIDTH
from repro.sat import Solver

VARIABLES = ("a", "b", "c")

#: Operators exercised by the random expression generator.  Division and
#: modulo are included (C-style truncation, division by zero handled by the
#: circuits' b==0 guard, mirroring the interpreter).
BINARY_OPS = ("+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&&", "||")
UNARY_OPS = ("-", "!")

#: Inputs stressed on every expression: zero, small values, negatives, and
#: the overflow boundary of the default 16-bit width.
BOUNDARY_INPUTS = (
    (0, 0, 0),
    (1, -1, 2),
    (-5, 7, -11),
    (255, -256, 129),
    (32767, -32768, -1),
    (-32768, -32768, 32767),
    (1000, 3000, -473),
)


def random_expression(rng: random.Random, depth: int) -> ast.Expr:
    """A random expression tree over the variables ``a``, ``b``, ``c``."""
    if depth <= 0 or rng.random() < 0.25:
        if rng.random() < 0.55:
            return ast.VarRef(line=1, name=rng.choice(VARIABLES))
        return ast.IntLiteral(line=1, value=rng.randint(-40, 40))
    shape = rng.random()
    if shape < 0.15:
        return ast.UnaryOp(
            op=rng.choice(UNARY_OPS),
            operand=random_expression(rng, depth - 1),
            line=1,
        )
    if shape < 0.25:
        return ast.Conditional(
            cond=random_expression(rng, depth - 1),
            then=random_expression(rng, depth - 1),
            otherwise=random_expression(rng, depth - 1),
            line=1,
        )
    return ast.BinaryOp(
        op=rng.choice(BINARY_OPS),
        left=random_expression(rng, depth - 1),
        right=random_expression(rng, depth - 1),
        line=1,
    )


def render(expr: ast.Expr) -> str:
    """Render an expression tree back to mini-C source."""
    if isinstance(expr, ast.IntLiteral):
        if expr.value < 0:
            return f"(0 - {-expr.value})"
        return str(expr.value)
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "-":
            return f"(0 - {render(expr.operand)})"
        return f"(!{render(expr.operand)})"
    if isinstance(expr, ast.BinaryOp):
        return f"({render(expr.left)} {expr.op} {render(expr.right)})"
    if isinstance(expr, ast.Conditional):
        return f"({render(expr.cond)} ? {render(expr.then)} : {render(expr.otherwise)})"
    raise NotImplementedError(type(expr).__name__)


class _VectorResolver:
    """Resolver mapping the three free variables to fixed bit-vectors."""

    def __init__(self, vectors):
        self.vectors = vectors

    def read_scalar(self, name, line):
        return self.vectors[name]

    def read_array(self, name, line):  # pragma: no cover - no arrays generated
        raise KeyError(name)

    def encode_call(self, call):  # pragma: no cover - no calls generated
        raise NotImplementedError

    def concrete_value(self, expr):
        return None


def encode_expression(expr: ast.Expr, simplify: bool):
    """Encode ``expr`` over fresh inputs; returns (context, builder, inputs, out)."""
    context = EncodingContext(DEFAULT_WIDTH)
    builder = CircuitBuilder(context, simplify=simplify)
    vectors = {name: builder.fresh() for name in VARIABLES}
    encoder = ExpressionEncoder(builder, _VectorResolver(vectors))
    out = encoder.encode(expr)
    return context, builder, vectors, out


def evaluate_circuit(expr: ast.Expr, simplify: bool, inputs) -> int:
    context, builder, vectors, out = encode_expression(expr, simplify)
    for name, value in zip(VARIABLES, inputs):
        builder.fix_to_value(vectors[name], value)
    solver = Solver()
    solver.ensure_vars(context.num_vars)
    for clause in context.hard:
        solver.add_clause(clause)
    assert solver.solve(), "circuit with pinned inputs must be satisfiable"
    return builder.decode(out, solver.get_model())


def interpret(expr: ast.Expr, inputs) -> int:
    source = f"int main(int a, int b, int c) {{ return {render(expr)}; }}\n"
    program = parse_program(source, name="prop-check")
    return Interpreter(program).run(list(inputs)).return_value


@pytest.mark.parametrize("seed", range(40))
def test_simplified_circuits_match_interpreter(seed):
    rng = random.Random(seed)
    expr = random_expression(rng, depth=3)
    sampled = [tuple(rng.randint(-40000, 40000) for _ in range(3)) for _ in range(2)]
    for inputs in list(BOUNDARY_INPUTS[:3]) + sampled:
        expected = interpret(expr, inputs)
        plain = evaluate_circuit(expr, False, inputs)
        simplified = evaluate_circuit(expr, True, inputs)
        assert plain == expected, (render(expr), inputs)
        assert simplified == expected, (render(expr), inputs)


@pytest.mark.parametrize("seed", range(40, 52))
def test_simplifier_never_grows_the_circuit(seed):
    rng = random.Random(seed)
    expr = random_expression(rng, depth=4)
    context_plain, _, _, _ = encode_expression(expr, simplify=False)
    context_simplified, _, _, _ = encode_expression(expr, simplify=True)
    assert len(context_simplified.hard) <= len(context_plain.hard)
    assert context_simplified.num_vars <= context_plain.num_vars


def test_overflow_and_negative_operands_explicitly():
    cases = [
        ("(a * b)", (32767, 2, 0)),
        ("(a * b)", (-32768, -1, 0)),
        ("(a + b)", (32767, 1, 0)),
        ("(a - b)", (-32768, 1, 0)),
        ("(a / b)", (-7, 2, 0)),
        ("(a / b)", (7, -2, 0)),
        ("(a % b)", (-7, 2, 0)),
        ("(a % b)", (7, 0, 0)),  # division by zero: guarded semantics
        ("(a / b)", (-32768, -1, 0)),  # overflowing quotient
        ("(a < b)", (-32768, 32767, 0)),
        ("((a * a) * a)", (1000, 0, 0)),
    ]
    for text, inputs in cases:
        source = f"int main(int a, int b, int c) {{ return {text}; }}\n"
        program = parse_program(source, name="edge-check")
        expr = program.function("main").body[0].value
        expected = Interpreter(program).run(list(inputs)).return_value
        assert evaluate_circuit(expr, False, inputs) == expected, (text, inputs)
        assert evaluate_circuit(expr, True, inputs) == expected, (text, inputs)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    inputs=st.tuples(
        st.integers(min_value=-(2**15), max_value=2**15 - 1),
        st.integers(min_value=-(2**15), max_value=2**15 - 1),
        st.integers(min_value=-(2**15), max_value=2**15 - 1),
    ),
)
def test_hypothesis_expression_equivalence(seed, inputs):
    rng = random.Random(seed)
    expr = random_expression(rng, depth=3)
    expected = interpret(expr, inputs)
    assert evaluate_circuit(expr, True, inputs) == expected, (render(expr), inputs)
