"""Differential tests: the C search kernel versus the pure-Python loop.

PR 3 proved the propagation backends bit-identical; this suite extends the
same guarantee to the full search kernel — first-UIP conflict analysis with
clause learning and seen-buffer minimization, backjumping, VSIDS
bump/decay/rescale, the activity order heap, assumption handling with
core extraction, Luby restarts, decision/conflict budgets, learnt-database
reduction and arena compaction.  Every (propagation, search) backend
combination must produce identical SAT/UNSAT answers, models, assumption
cores and statistics — including the analysis counters
(``analyses`` / ``minimized_literals`` / ``backjumped_levels``).

When the C library cannot be built the differential pairs are skipped but
the pure-Python analysis tests (minimization regression, decision-budget
heap regression) still run, which is the feature check's guarantee.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import Solver, propagation_backend, search_backend
from repro.sat.solver import SolverStats

#: Which compiled layers the current environment allows: an explicit
#: REPRO_PROPAGATION/REPRO_SEARCH pin makes that layer's "c" backend
#: unconstructible per solver, so CI's pinned matrix cells differentiate
#: exactly the combinations their pins permit (and a machine without a
#: compiler differentiates none).
PROP_C = propagation_backend() == "c"
SEARCH_C = search_backend() == "c"
C_AVAILABLE = PROP_C or SEARCH_C

needs_c = pytest.mark.skipif(
    not C_AVAILABLE, reason="no compiled solver core available in this environment"
)

#: Every constructible (propagation, search) backend combination, the pure
#: reference first.
COMBOS = [("python", "python")]
if PROP_C and SEARCH_C:
    COMBOS += [("c", "c"), ("c", "python"), ("python", "c")]
elif PROP_C:
    COMBOS += [("c", "python")]
elif SEARCH_C:
    COMBOS += [("python", "c")]


def _stats_tuple(stats: SolverStats) -> tuple:
    return (
        stats.conflicts,
        stats.decisions,
        stats.propagations,
        stats.restarts,
        stats.learnt_clauses,
        stats.deleted_clauses,
        stats.analyses,
        stats.minimized_literals,
        stats.backjumped_levels,
    )


def _quartet() -> list[Solver]:
    return [Solver(backend=prop, search=search) for prop, search in COMBOS]


def _assert_all_same(solvers: list[Solver], results: list) -> None:
    reference = results[0]
    reference_stats = _stats_tuple(solvers[0].stats)
    for combo, solver, result in zip(COMBOS[1:], solvers[1:], results[1:]):
        assert result == reference, combo
        assert _stats_tuple(solver.stats) == reference_stats, combo
        if reference:
            assert solver.get_model() == solvers[0].get_model(), combo
        else:
            assert sorted(solver.unsat_core()) == sorted(solvers[0].unsat_core()), combo


def _random_instance(seed: int, num_vars: int, num_clauses: int) -> list[list[int]]:
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, 4)
        clause = []
        for _ in range(width):
            var = rng.randint(1, num_vars)
            clause.append(var if rng.random() < 0.5 else -var)
        clauses.append(clause)
    return clauses


def _pigeonhole(solver: Solver, pigeons: int, holes: int) -> None:
    def var(pigeon: int, hole: int) -> int:
        return pigeon * holes + hole + 1

    for pigeon in range(pigeons):
        solver.add_clause([var(pigeon, hole) for hole in range(holes)])
    for hole in range(holes):
        for first in range(pigeons):
            for second in range(first + 1, pigeons):
                solver.add_clause([-var(first, hole), -var(second, hole)])


@needs_c
class TestDifferentialMatrix:
    """All four (propagation, search) combinations, driven in lockstep."""

    @pytest.mark.parametrize("seed", range(15))
    def test_random_formulas_identical(self, seed):
        clauses = _random_instance(seed, num_vars=14, num_clauses=56)
        solvers = _quartet()
        for solver in solvers:
            for clause in clauses:
                solver.add_clause(list(clause))
        _assert_all_same(solvers, [solver.solve() for solver in solvers])

    @pytest.mark.parametrize("seed", range(10))
    def test_assumption_cores_identical(self, seed):
        """UNSAT-under-assumptions exercises _analyze_final on every combo."""
        rng = random.Random(7000 + seed)
        clauses = _random_instance(8000 + seed, num_vars=12, num_clauses=52)
        solvers = _quartet()
        for solver in solvers:
            for clause in clauses:
                solver.add_clause(list(clause))
        saw_unsat = False
        for _ in range(8):
            assumptions = [
                rng.choice([-1, 1]) * rng.randint(1, 12)
                for _ in range(rng.randint(1, 5))
            ]
            results = [solver.solve(list(assumptions)) for solver in solvers]
            _assert_all_same(solvers, results)
            saw_unsat = saw_unsat or not results[0]
        # Every seed's sweep hits at least one UNSAT answer, so core
        # extraction (_analyze_final) really ran on every combo.
        assert saw_unsat

    def test_restart_boundaries_identical(self):
        """Pigeonhole 6/5 needs hundreds of conflicts: restarts must fire."""
        solvers = _quartet()
        for solver in solvers:
            _pigeonhole(solver, 6, 5)
        _assert_all_same(solvers, [solver.solve() for solver in solvers])
        assert solvers[0].stats.restarts > 0
        # Every conflict is analyzed except a terminal one at level 0.
        assert 0 <= solvers[0].stats.conflicts - solvers[0].stats.analyses <= 1
        assert solvers[0].stats.analyses > 0

    def test_restarts_under_assumptions_identical(self):
        """Assumption-aware restarts keep the assumption prefix on all combos."""
        solvers = _quartet()
        for solver in solvers:
            _pigeonhole(solver, 6, 5)
            solver.ensure_vars(35)
            solver.add_clause([31, 32])
        assumptions = [31, -32]
        _assert_all_same(
            solvers, [solver.solve(list(assumptions)) for solver in solvers]
        )
        assert solvers[0].stats.restarts > 0

    def test_clause_activity_rescale_identical(self):
        """A near-threshold _cla_inc forces the 1e20 rescale during replay."""
        solvers = _quartet()
        for solver in solvers:
            solver._cla_inc = 1e19
            _pigeonhole(solver, 5, 4)
        _assert_all_same(solvers, [solver.solve() for solver in solvers])
        reference = solvers[0]
        for solver in solvers[1:]:
            assert solver._cla_inc == reference._cla_inc
            assert sorted(solver._activity_of.values()) == sorted(
                reference._activity_of.values()
            )

    def test_var_activity_rescale_identical(self):
        """A near-threshold var_inc forces the 1e100 rescale + heap rebuild."""
        solvers = _quartet()
        for solver in solvers:
            solver._var_inc = 1e99
            _pigeonhole(solver, 5, 4)
        _assert_all_same(solvers, [solver.solve() for solver in solvers])
        reference = solvers[0]
        for solver in solvers[1:]:
            assert solver._var_inc == reference._var_inc
            assert list(solver._activity) == list(reference._activity)

    @pytest.mark.parametrize("seed", range(6))
    def test_push_pop_compaction_identical(self, seed):
        """Layer churn creates arena garbage; compaction must not diverge."""
        rng = random.Random(9000 + seed)
        base = _random_instance(9500 + seed, num_vars=10, num_clauses=24)
        solvers = _quartet()
        for solver in solvers:
            for clause in base:
                solver.add_clause(list(clause))
        compacted = False
        for _ in range(12):
            layer_seed = rng.randint(0, 10_000)
            for solver in solvers:
                solver.push()
                for clause in _random_instance(layer_seed, 10, 30):
                    solver.add_clause(list(clause))
            _assert_all_same(solvers, [solver.solve() for solver in solvers])
            for solver in solvers:
                solver.pop()
            compacted = compacted or all(
                solver._garbage == 0 for solver in solvers
            )
            _assert_all_same(solvers, [solver.solve() for solver in solvers])
        # Compaction decisions are made on the logical arena length, so all
        # four backends compact in the same pop.
        garbage = {solver._garbage for solver in solvers}
        assert len(garbage) == 1

    def test_forced_compaction_then_search_identical(self):
        """The kernel must re-provision slack after a compaction remap."""
        solvers = _quartet()
        for solver in solvers:
            for _ in range(40):
                solver.push()
                for clause in _random_instance(11, 20, 60):
                    solver.add_clause(list(clause))
                solver.solve()
                solver.pop()
            solver._compact()
            assert solver._garbage == 0
            solver.check_invariants()
        clauses = _random_instance(321, num_vars=12, num_clauses=48)
        for solver in solvers:
            for clause in clauses:
                solver.add_clause(list(clause))
        _assert_all_same(solvers, [solver.solve() for solver in solvers])
        for solver in solvers:
            # The compaction remap and the C kernel's re-entry must both
            # leave the arena, watches, trail and order heap consistent.
            solver.check_invariants()

    @pytest.mark.parametrize("combo", COMBOS)
    def test_invariants_hold_through_search_lifecycle(self, combo):
        """check_invariants passes at every quiescent point of a session."""
        prop, search = combo
        solver = Solver(backend=prop, search=search)
        solver.check_invariants()
        for clause in _random_instance(606, num_vars=14, num_clauses=58):
            solver.add_clause(list(clause))
        solver.check_invariants()
        solver.solve()
        solver.check_invariants()
        solver.solve([1, -2, 3])
        solver.check_invariants()
        solver.push()
        for clause in _random_instance(607, num_vars=14, num_clauses=30):
            solver.add_clause(list(clause))
        solver.solve()
        solver.check_invariants()
        solver.pop()
        solver.check_invariants()
        solver._compact()
        solver.check_invariants()
        solver.solve()
        solver.check_invariants()

    def test_budgeted_probe_identical(self):
        clauses = _random_instance(77, num_vars=16, num_clauses=70)
        solvers = _quartet()
        for solver in solvers:
            for clause in clauses:
                solver.add_clause(list(clause))
        outcomes = [solver.solve_limited(max_decisions=3) for solver in solvers]
        assert len(set(outcomes)) == 1
        reference = _stats_tuple(solvers[0].stats)
        for solver in solvers[1:]:
            assert _stats_tuple(solver.stats) == reference

    def test_conflict_budget_identical(self):
        from repro.sat.solver import ConflictBudgetExceeded

        solvers = _quartet()
        outcomes = []
        for solver in solvers:
            _pigeonhole(solver, 6, 5)
            solver.max_conflicts = 50
            try:
                outcomes.append(("done", solver.solve()))
            except ConflictBudgetExceeded:
                outcomes.append(("budget", None))
            finally:
                solver.max_conflicts = None
        assert len(set(outcomes)) == 1
        assert outcomes[0][0] == "budget"
        reference = _stats_tuple(solvers[0].stats)
        for solver in solvers[1:]:
            assert _stats_tuple(solver.stats) == reference

    def test_incremental_blocking_identical(self):
        solvers = _quartet()
        clauses = _random_instance(4242, num_vars=10, num_clauses=30)
        for solver in solvers:
            for clause in clauses:
                solver.add_clause(list(clause))
        for _ in range(8):
            results = [solver.solve() for solver in solvers]
            _assert_all_same(solvers, results)
            if not results[0]:
                break
            model = solvers[0].get_model()
            blocking = [(-var if value else var) for var, value in model.items()][:10]
            if not blocking:
                break
            for solver in solvers:
                solver.add_clause(list(blocking))

    def test_localization_reports_identical(self, monkeypatch):
        """A full MaxSAT localization is bit-identical across all combos."""
        from repro.core.localizer import BugAssistLocalizer
        from repro.lang import parse_program
        from repro.sat import _ccore
        from repro.spec import Specification

        source = (
            "int main(int x) {\n"
            "    int a = x + 1;\n"
            "    int b = a * 2;\n"
            "    int c = b - 3;\n"
            "    return c;\n"
            "}\n"
        )
        program = parse_program(source, name="search-diff-check")
        reports = {}
        for prop, search in COMBOS:
            # Pin the defaults every internal Solver() picks up.
            monkeypatch.setattr(_ccore, "backend", lambda choice=prop: choice)
            monkeypatch.setattr(
                _ccore,
                "search_backend",
                lambda follow=None, choice=search: choice,
            )
            localizer = BugAssistLocalizer(program, mode="trace")
            reports[(prop, search)] = localizer.localize_test(
                [5], Specification.return_value(0)
            )
        reference = reports[COMBOS[0]]
        for combo in COMBOS[1:]:
            report = reports[combo]
            assert report.lines == reference.lines, combo
            assert report.sat_calls == reference.sat_calls, combo
            assert report.propagations == reference.propagations, combo
            assert report.conflicts == reference.conflicts, combo
            assert [c.lines for c in report.candidates] == [
                c.lines for c in reference.candidates
            ], combo


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.lists(
            st.integers(min_value=-8, max_value=8).filter(lambda x: x != 0),
            min_size=1,
            max_size=4,
        ),
        min_size=1,
        max_size=30,
    ),
    st.lists(
        st.integers(min_value=-8, max_value=8).filter(lambda x: x != 0),
        max_size=3,
    ),
)
def test_hypothesis_matrix(clauses, assumptions):
    if not C_AVAILABLE:
        pytest.skip("C search kernel unavailable")
    solvers = _quartet()
    for solver in solvers:
        for clause in clauses:
            solver.add_clause(list(clause))
    _assert_all_same(
        solvers, [solver.solve(list(assumptions)) for solver in solvers]
    )


class TestAnalyzeMinimization:
    """The seen-buffer local minimization, pinned on a crafted conflict.

    Level 1 decides x1 and propagates x2 via (¬x1 ∨ x2); level 2 decides x4
    and propagates x5 via (¬x4 ∨ x5) and x6 via (¬x4 ∨ x6).  The conflict
    clause (¬x2 ∨ ¬x5 ∨ ¬x6 ∨ ¬x1) then resolves to the first-UIP clause
    (¬x4 ∨ ¬x2 ∨ ¬x1), in which ¬x2 is redundant: its reason's only other
    literal, ¬x1, is already in the clause.  Minimization must drop exactly
    ¬x2 while leaving the asserting literal (¬x4) and the backjump level
    (1) unchanged.
    """

    def _prepared_solver(self) -> tuple[Solver, list[int]]:
        solver = Solver(backend="python", search="python")
        solver.ensure_vars(6)
        assert solver.add_clause([-1, 2])  # reason for x2 @ level 1
        assert solver.add_clause([-4, 5])  # reason for x5 @ level 2
        assert solver.add_clause([-4, 6])  # reason for x6 @ level 2
        assert solver.add_clause([-2, -5, -6, -1])  # the conflict clause
        refs = list(solver._clauses)
        to_internal = solver._to_internal
        solver._new_decision_level()
        assert solver._enqueue(to_internal(1), 0)
        assert solver._enqueue(to_internal(2), refs[0])
        solver._new_decision_level()
        assert solver._enqueue(to_internal(4), 0)
        assert solver._enqueue(to_internal(5), refs[1])
        assert solver._enqueue(to_internal(6), refs[2])
        return solver, refs

    def test_minimization_drops_dominated_literal_only(self):
        solver, refs = self._prepared_solver()
        to_internal = solver._to_internal
        learnt, backjump = solver._analyze(refs[3])
        # Asserting literal (the negated first UIP) and backjump level are
        # exactly what the unminimized clause (¬x4 ∨ ¬x2 ∨ ¬x1) would give.
        assert learnt[0] == to_internal(-4)
        assert backjump == 1
        # ...but the dominated ¬x2 is gone.
        assert sorted(learnt) == sorted([to_internal(-4), to_internal(-1)])
        assert solver.stats.analyses == 1
        assert solver.stats.minimized_literals == 1
        # The shared seen buffer is left clean for the next analysis.
        assert not any(solver._seen)

    def test_decision_literals_survive_minimization(self):
        solver, refs = self._prepared_solver()
        to_internal = solver._to_internal
        learnt, _ = solver._analyze(refs[3])
        # ¬x1 blames a decision (no reason clause): it can never be dropped.
        assert to_internal(-1) in learnt


class TestDecisionBudgetHeapRegression:
    """An exhausted decision budget must not leak the branch variable.

    The budget check fires *after* the branch variable was popped from the
    order heap; before the fix the variable was never reinserted, so later
    solves on the same solver could silently leave it unassigned.
    """

    @pytest.mark.parametrize("combo", COMBOS)
    def test_probe_does_not_lose_branch_variable(self, combo):
        prop, search = combo
        solver = Solver(backend=prop, search=search)
        for clause in ([1, 2], [-1, 2], [3, 4], [-3, -4]):
            solver.add_clause(list(clause))
        assert solver.solve_limited(max_decisions=0) is None
        # Every variable must be back in the order heap after the probe.
        for var in range(1, 5):
            assert var in solver._order, var
        assert solver.solve()
        assert len(solver.get_model()) == 4  # nothing was lost to the probe


class TestSearchFeatureCheck:
    def test_python_search_always_constructible(self):
        solver = Solver(backend="python", search="python")
        solver.add_clause([1, 2])
        assert solver.solve()
        assert solver.search_backend == "python"

    def test_unknown_search_backend_rejected(self):
        with pytest.raises(ValueError):
            Solver(search="prolog")

    @pytest.mark.skipif(
        "REPRO_SEARCH" in os.environ,
        reason="an explicit REPRO_SEARCH overrides the follow-the-backend default",
    )
    def test_search_follows_propagation_by_default(self):
        """Without REPRO_SEARCH, per-solver search follows propagation."""
        solver = Solver(backend="python")
        assert solver.search_backend == "python"
        if PROP_C:
            compiled = Solver(backend="c")
            assert compiled.search_backend == "c"

    def test_env_pins_pure_python_end_to_end(self):
        """REPRO_PROPAGATION=python alone keeps the search interpreted too."""
        script = (
            "from repro.sat import propagation_backend, search_backend, Solver\n"
            "assert propagation_backend() == 'python'\n"
            "assert search_backend() == 'python'\n"
            "s = Solver()\n"
            "assert s.backend == 'python' and s.search_backend == 'python'\n"
            "s.add_clause([1]); assert s.solve()\n"
            "print('ok')\n"
        )
        result = _run_in_subprocess(script, REPRO_PROPAGATION="python")
        assert result.returncode == 0, result.stderr
        assert "ok" in result.stdout

    @needs_c
    def test_env_mixes_python_propagation_with_c_search(self):
        script = (
            "from repro.sat import propagation_backend, search_backend, Solver\n"
            "assert propagation_backend() == 'python'\n"
            "assert search_backend() == 'c'\n"
            "s = Solver()\n"
            "assert s.backend == 'python' and s.search_backend == 'c'\n"
            "s.add_clause([1, 2]); s.add_clause([-1, 2]); assert s.solve()\n"
            "print('ok')\n"
        )
        result = _run_in_subprocess(
            script, REPRO_PROPAGATION="python", REPRO_SEARCH="auto"
        )
        assert result.returncode == 0, result.stderr
        assert "ok" in result.stdout

    @needs_c
    def test_env_requires_c_search(self):
        script = (
            "from repro.sat import search_backend\n"
            "assert search_backend() == 'c'\n"
            "print('ok')\n"
        )
        result = _run_in_subprocess(script, REPRO_SEARCH="c")
        assert result.returncode == 0, result.stderr

    def test_compilerless_environment_falls_back(self, tmp_path):
        """With no compiler on PATH, auto degrades to pure Python cleanly.

        The subprocess PATH is a fresh directory holding only a python
        symlink (the interpreter's own bin dir may ship a compiler on
        distro Pythons), and the build cache is redirected to an empty
        directory so a previously compiled artifact cannot mask the
        missing compiler.
        """
        bare_bin = tmp_path / "bare-bin"
        bare_bin.mkdir()
        (bare_bin / os.path.basename(sys.executable)).symlink_to(sys.executable)
        script = (
            "from repro.sat import propagation_backend, search_backend, Solver\n"
            "from repro.sat import propagation_core_unavailable_reason\n"
            "assert propagation_backend() == 'python'\n"
            "assert search_backend() == 'python'\n"
            "assert 'compiler' in propagation_core_unavailable_reason()\n"
            "s = Solver()\n"
            "s.add_clause([1, 2]); s.add_clause([-1, -2]); assert s.solve()\n"
            "print('ok')\n"
        )
        result = _run_in_subprocess(
            script,
            PATH=str(bare_bin),
            REPRO_SAT_BUILD_DIR=str(tmp_path / "empty-cache"),
        )
        assert result.returncode == 0, result.stderr
        assert "ok" in result.stdout


def _run_in_subprocess(script: str, **env_overrides: str):
    env = dict(os.environ)
    env.pop("REPRO_PROPAGATION", None)
    env.pop("REPRO_SEARCH", None)
    env.update(env_overrides)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, text=True
    )
