"""Tests for the session API: solver/engine push-pop layers and
compile-once/localize-many equivalence with the per-test baseline."""

from __future__ import annotations

import pickle

import pytest

from repro.bmc import BoundedModelChecker
from repro.core import (
    BatchLocalizationError,
    BugAssistLocalizer,
    BugAssistPipeline,
    LocalizationSession,
    ShardLocalizationError,
    Specification,
    rank_locations,
)
from repro.lang import Interpreter, parse_program
from repro.maxsat import WCNF, make_engine
from repro.sat import Solver

MOTIVATING = (
    "int Array[3] = {10, 20, 30};\n"
    "int testme(int index) {\n"
    "    if (index != 1) {\n"
    "        index = 2;\n"
    "    } else {\n"
    "        index = index + 2;\n"
    "    }\n"
    "    int i = index;\n"
    "    assert(i >= 0 && i < 3);\n"
    "    return Array[i];\n"
    "}\n"
    "int main(int index) { return testme(index); }\n"
)

CLASSIFY = (
    "int classify(int x) {\n"
    "    int big = 0;\n"
    "    if (x > 7) {\n"  # bug: spec wants threshold 10
    "        big = 1;\n"
    "    }\n"
    "    return big;\n"
    "}\n"
    "int main(int x) { return classify(x); }\n"
)


def classify_failing_tests():
    program = parse_program(CLASSIFY, name="classify")
    interpreter = Interpreter(program)
    failing = []
    for x in range(16):
        expected = 1 if x > 10 else 0
        if interpreter.run([x]).return_value != expected:
            failing.append(([x], Specification.return_value(expected)))
    assert failing
    return program, failing


# --------------------------------------------------------------- solver push/pop


class TestSolverLayers:
    def test_retracted_units_really_gone(self):
        solver = Solver()
        x, y = solver.new_var(), solver.new_var()
        solver.add_clause([x, y])
        solver.push()
        solver.add_clause([-x])
        assert solver.solve()
        assert solver.model_value(x) is False
        # Under the layer, assuming x must fail.
        assert not solver.solve([x])
        solver.pop()
        # After the pop the unit is gone: x may be true again.
        assert solver.solve([x])
        assert solver.model_value(x) is True

    def test_layers_nest_lifo(self):
        solver = Solver()
        x, y = solver.new_var(), solver.new_var()
        solver.push()
        solver.add_clause([x])
        solver.push()
        solver.add_clause([y])
        assert solver.solve()
        assert solver.model_value(x) is True and solver.model_value(y) is True
        solver.pop()  # retracts [y]
        assert solver.solve([-y])
        assert solver.model_value(x) is True
        solver.pop()  # retracts [x]
        assert solver.solve([-x, -y])

    def test_learnt_clauses_survive_pop(self):
        # A pigeonhole core in the base clauses forces real conflict
        # learning while the layer is open; the lemmas must survive the pop
        # and the solver must stay correct on both polarities.
        solver = Solver()
        vars_ = {(p, h): solver.new_var() for p in range(3) for h in range(2)}
        for p in range(3):
            solver.add_clause([vars_[(p, 0)], vars_[(p, 1)]])
        marker = solver.new_var()
        solver.push()
        # Inside the layer: the at-most-one constraints making it UNSAT.
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    solver.add_clause([-vars_[(p1, h)], -vars_[(p2, h)]])
        assert not solver.solve()
        learnt_before = solver.stats.learnt_clauses
        assert learnt_before > 0
        solver.pop()
        # Without the layer the instance is satisfiable again, learnt
        # statistics intact and no stale constraint on the marker variable.
        assert solver.solve([marker])
        assert solver.stats.learnt_clauses == learnt_before
        assert solver.model_value(marker) is True

    def test_add_clause_under_kept_trail(self):
        # After a solve with assumptions the trail is kept; adding clauses
        # that are unit or conflicting under that trail must still be sound.
        solver = Solver()
        x, y, z = (solver.new_var() for _ in range(3))
        solver.add_clause([x, y, z])
        assert solver.solve([x, y])
        # Conflicting under the kept trail (x and y are assumed true).
        solver.add_clause([-x, -y])
        assert solver.solve([x])
        assert solver.model_value(y) is False
        assert not solver.solve([x, y])
        core = solver.unsat_core()
        assert set(core) <= {x, y}

    def test_solve_limited_budget(self):
        solver = Solver()
        lits = [solver.new_var() for _ in range(30)]
        for a in range(0, 30, 3):
            solver.add_clause([lits[a], lits[a + 1], lits[a + 2]])
        assert solver.solve_limited(max_decisions=1000) is True
        solver.add_clause([lits[0]])
        assert solver.solve_limited([-lits[0]], max_decisions=1000) is False
        # An absurdly small budget gives up rather than answering.
        fresh = Solver()
        vars2 = [fresh.new_var() for _ in range(40)]
        for index in range(0, 40, 2):
            fresh.add_clause([vars2[index], vars2[index + 1]])
        assert fresh.solve_limited(max_decisions=1) is None


# --------------------------------------------------------------- engine layers


def small_wcnf() -> WCNF:
    wcnf = WCNF()
    x, y = wcnf.new_var(), wcnf.new_var()
    wcnf.add_hard([x, y])
    wcnf.add_soft([x], label="x")
    wcnf.add_soft([y], label="y")
    return wcnf


class TestEngineLayers:
    @pytest.mark.parametrize("strategy", ["hitting-set", "msu3", "linear"])
    def test_layer_roundtrip_restores_cost(self, strategy):
        engine = make_engine(strategy)
        engine.load(small_wcnf())
        assert engine.solve_current().cost == 0
        engine.push_layer()
        engine.add_hard([-1])  # forces soft [x] to fall
        result = engine.solve_current()
        assert result.satisfiable and result.cost == 1
        assert "x" in result.falsified_labels
        engine.pop_layer()
        assert engine.solve_current().cost == 0

    @pytest.mark.parametrize("strategy", ["hitting-set", "msu3", "linear"])
    def test_pop_restores_retired_softs(self, strategy):
        engine = make_engine(strategy)
        engine.load(small_wcnf())
        engine.push_layer()
        engine.add_hard([-1])
        result = engine.solve_current()
        assert result.cost == 1
        engine.block(result.falsified)  # retires the fallen soft
        follow_up = engine.solve_current()
        # After blocking, either nothing soft is left to fall or the
        # instance is unsatisfiable under the layer.
        assert not follow_up.satisfiable or not follow_up.falsified
        engine.pop_layer()
        # The retired soft is active again and the blocking clause is gone.
        assert engine.solve_current().cost == 0
        assert all(binding.active for binding in engine._bindings)

    @pytest.mark.parametrize("strategy", ["hitting-set", "msu3", "linear"])
    def test_layered_engine_matches_fresh_engine(self, strategy):
        # Re-solving the same per-test layer on a reused engine must agree
        # with a freshly loaded engine on cost and falsified labels.
        reused = make_engine(strategy)
        reused.load(small_wcnf())
        for _ in range(3):
            reused.push_layer()
            reused.add_hard([-2])  # forces soft [y] to fall
            layered = reused.solve_current()
            reused.pop_layer()
            fresh = make_engine(strategy)
            wcnf = small_wcnf()
            wcnf.add_hard([-2])
            direct = fresh.solve(wcnf)
            assert layered.cost == direct.cost == 1
            assert set(layered.falsified_labels) == set(direct.falsified_labels)

    def test_unbalanced_pop_raises(self):
        engine = make_engine("hitting-set")
        engine.load(small_wcnf())
        with pytest.raises(RuntimeError):
            engine.pop_layer()


# ------------------------------------------------------------------- sessions


@pytest.fixture(scope="module")
def motivating_program():
    return parse_program(MOTIVATING, name="motivating")


class TestLocalizationSession:
    def test_compiles_once_and_matches_per_test_localizer(self, motivating_program):
        localizer = BugAssistLocalizer(motivating_program)
        baseline = localizer.localize_test([1], Specification.assertion())
        with LocalizationSession(motivating_program) as session:
            first = session.localize([1], Specification.assertion())
            second = session.localize([1], Specification.assertion())
        assert session.stats.encodings_built == 1
        assert session.stats.tests_localized == 2
        assert set(first.lines) == set(second.lines) == set(baseline.lines)
        assert [c.lines for c in first.candidates] == [
            c.lines for c in baseline.candidates
        ]

    def test_session_vs_pipeline_equivalence_on_batch(self):
        program, failing = classify_failing_tests()
        pipeline_baseline = rank_locations(
            BugAssistLocalizer(program), failing, program_name="classify"
        )
        with LocalizationSession(program) as session:
            ranked = session.localize_batch(failing, program_name="classify")
        assert ranked.ranked_lines == pipeline_baseline.ranked_lines
        assert len(ranked.runs) == len(pipeline_baseline.runs)
        for mine, theirs in zip(ranked.runs, pipeline_baseline.runs):
            assert set(mine.lines) == set(theirs.lines)

    def test_process_executor_matches_serial(self):
        program, failing = classify_failing_tests()
        with LocalizationSession(program) as serial_session:
            serial = serial_session.localize_batch(failing)
        with LocalizationSession(program) as pool_session:
            pooled = pool_session.localize_batch(
                failing, executor="process", workers=2
            )
        assert pooled.ranked_lines == serial.ranked_lines
        assert [r.lines for r in pooled.runs] == [r.lines for r in serial.runs]

    def test_unknown_executor_rejected(self):
        program, failing = classify_failing_tests()
        with LocalizationSession(program) as session:
            with pytest.raises(ValueError):
                session.localize_batch(failing, executor="threads")

    def test_poisoned_test_in_pool_names_the_offender(self):
        # A test with the wrong arity makes its worker raise; the failure
        # must surface as BatchLocalizationError naming the offending test
        # (after one fresh-pool retry), not as a bare pickle traceback.
        program, failing = classify_failing_tests()
        poisoned = failing[:2] + [([1, 2, 3], Specification.return_value(0))]
        with LocalizationSession(program) as session:
            with pytest.raises(BatchLocalizationError) as excinfo:
                session.localize_batch(poisoned, executor="process", workers=2)
        message = str(excinfo.value)
        assert "[1, 2, 3]" in message          # the offending test's inputs
        assert "failed twice" in message       # original run plus one retry
        assert "ValueError" in message         # the underlying cause survives

    def test_shard_error_pickles_with_its_label(self):
        import pickle

        error = ShardLocalizationError("#2 inputs=[7]", "ValueError: boom")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.test_label == "#2 inputs=[7]"
        assert "ValueError: boom" in str(clone)

    def test_healthy_batch_unaffected_by_retry_machinery(self):
        program, failing = classify_failing_tests()
        with LocalizationSession(program) as serial_session:
            serial = serial_session.localize_batch(failing)
        with LocalizationSession(program) as pool_session:
            pooled = pool_session.localize_batch(failing, executor="process", workers=2)
        assert pooled.ranked_lines == serial.ranked_lines


class TestSessionPinning:
    def test_pin_blocks_close_until_unpinned(self, motivating_program):
        session = LocalizationSession(motivating_program)
        session.pin()
        assert session.pinned
        with pytest.raises(RuntimeError, match="pinned"):
            session.close()
        # Pinned sessions keep serving (the serve workers localize while
        # holding a pin so eviction sweeps cannot close them mid-request).
        report = session.localize([1], Specification.assertion())
        assert report.lines
        session.unpin()
        assert not session.pinned
        session.close()

    def test_unpin_without_pin_raises(self, motivating_program):
        session = LocalizationSession(motivating_program)
        with pytest.raises(RuntimeError):
            session.unpin()

    def test_pin_on_closed_session_raises(self, motivating_program):
        session = LocalizationSession(motivating_program)
        session.close()
        with pytest.raises(RuntimeError):
            session.pin()

    def test_localize_records_request_profile(self, motivating_program):
        with LocalizationSession(motivating_program) as session:
            session.localize([1], Specification.assertion())
            first = session.last_request_profile
            session.localize([1], Specification.assertion())
            second = session.last_request_profile
        assert first["sat_calls"] > 0 and first["propagations"] > 0
        # The profile is per-request (layer deltas), not cumulative: the
        # second identical request must not report the sum of both.
        assert second["sat_calls"] <= first["sat_calls"]

    def test_compiled_program_is_picklable(self, motivating_program):
        checker = BoundedModelChecker(motivating_program, group_statements=True)
        compiled = checker.compile_program()
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone.num_vars == compiled.num_vars
        assert clone.num_clauses == compiled.num_clauses
        session = LocalizationSession.from_compiled(clone)
        report = session.localize([1], Specification.assertion())
        assert session.stats.encodings_built == 0
        assert report.contains_line(6) or report.contains_line(3)

    def test_localize_test_rejects_other_entry(self, motivating_program):
        with LocalizationSession(motivating_program) as session:
            with pytest.raises(ValueError):
                session.localize_test([1], Specification.assertion(), entry="testme")

    def test_closed_session_rejects_work(self, motivating_program):
        session = LocalizationSession(motivating_program)
        with session:
            session.localize([1], Specification.assertion())
        with pytest.raises(RuntimeError):
            session.localize([1], Specification.assertion())

    def test_pipeline_shim_delegates_to_session(self, motivating_program):
        with pytest.warns(DeprecationWarning):
            pipeline = BugAssistPipeline(motivating_program)
        report = pipeline.localize([1])
        assert report.contains_line(6)
        assert pipeline.session.stats.encodings_built == 1
        program, failing = classify_failing_tests()
        with pytest.warns(DeprecationWarning):
            pipeline = BugAssistPipeline(program)
        ranked = pipeline.localize_many(failing)
        assert len(ranked.runs) == len(failing)
        # The whole batch reused one compiled encoding.
        assert pipeline.session.stats.encodings_built == 1


@pytest.mark.slow
class TestSessionOnTcas:
    def test_session_matches_baseline_on_tcas_version(self):
        from repro.siemens.suite import TCAS_HARNESS_LINES, classify_tcas_tests
        from repro.siemens.tcas import tcas_faulty_program

        failing, _ = classify_tcas_tests("v2", count=300)
        selected = failing[:3]
        program = tcas_faulty_program("v2")
        localizer = BugAssistLocalizer(
            program, mode="program", hard_lines=TCAS_HARNESS_LINES
        )
        with LocalizationSession(
            program, hard_lines=TCAS_HARNESS_LINES
        ) as session:
            for vector, expected in selected:
                spec = Specification.return_value(expected)
                mine = session.localize(vector.as_list(), spec)
                theirs = localizer.localize_test(vector.as_list(), spec)
                assert set(mine.lines) == set(theirs.lines)
        assert session.stats.encodings_built == 1
