"""Unit and property-based tests for the CDCL SAT solver."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import Solver
from repro.sat.literals import normalize_clause


def brute_force_sat(num_vars: int, clauses: list[list[int]]) -> bool:
    """Reference satisfiability check by exhaustive enumeration."""
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {var: bits[var - 1] for var in range(1, num_vars + 1)}
        if all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause)
            for clause in clauses
        ):
            return True
    return False


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert Solver().solve()

    def test_single_unit_clause(self):
        solver = Solver()
        solver.add_clause([1])
        assert solver.solve()
        assert solver.model_value(1) is True
        assert solver.model_value(-1) is False

    def test_contradictory_units(self):
        solver = Solver()
        solver.add_clause([1])
        assert not solver.add_clause([-1]) or not solver.solve()
        assert not solver.solve()

    def test_simple_implication_chain(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve()
        assert solver.model_value(3) is True

    def test_empty_clause_rejected(self):
        solver = Solver()
        assert not solver.add_clause([])
        assert not solver.solve()

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            Solver().add_clause([0])

    def test_tautological_clause_ignored(self):
        solver = Solver()
        assert solver.add_clause([1, -1])
        assert solver.solve()

    def test_pigeonhole_3_into_2_unsat(self):
        # 3 pigeons, 2 holes: var p_{i,h} = 2*i + h + 1.
        solver = Solver()

        def var(pigeon: int, hole: int) -> int:
            return pigeon * 2 + hole + 1

        for pigeon in range(3):
            solver.add_clause([var(pigeon, 0), var(pigeon, 1)])
        for hole in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    solver.add_clause([-var(p1, hole), -var(p2, hole)])
        assert not solver.solve()

    def test_model_satisfies_all_clauses(self):
        clauses = [[1, 2, 3], [-1, -2], [-2, -3], [-1, -3], [2, 3]]
        solver = Solver()
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve()
        model = solver.get_model()
        for clause in clauses:
            assert any(model[abs(lit)] == (lit > 0) for lit in clause)

    def test_incremental_reuse(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve()
        solver.add_clause([-1])
        assert solver.solve()
        assert solver.model_value(2) is True
        solver.add_clause([-2])
        assert not solver.solve()


class TestClauseRetention:
    """The incremental MaxSAT loop adds blocking clauses between solves."""

    def test_add_clause_after_assumption_solve(self):
        solver = Solver()
        solver.ensure_vars(3)
        solver.add_clause([1, 2])
        assert solver.solve([-1])
        assert solver.model_value(2) is True
        # Growing the clause database after solving under assumptions must
        # work and be respected by later solves.
        solver.add_clause([-2, 3])
        assert solver.solve([-1])
        assert solver.model_value(3) is True
        assert not solver.solve([-1, -2])
        assert set(solver.unsat_core()) <= {-1, -2}

    def test_learnt_clauses_persist_across_solves(self):
        solver = Solver()
        # A small pigeonhole-style instance that forces some learning.
        for first in range(1, 4):
            solver.add_clause([2 * first - 1, 2 * first])
        for hole in (0, 1):
            for first in range(1, 4):
                for second in range(first + 1, 4):
                    solver.add_clause([-(2 * first - hole), -(2 * second - hole)])
        assert not solver.solve()
        conflicts = solver.stats.conflicts
        assert conflicts > 0
        # A permanently UNSAT solver keeps answering without re-searching:
        # everything derived in the first run is retained.
        assert not solver.solve()
        assert solver.stats.conflicts == conflicts

    def test_blocking_clause_flips_model(self):
        solver = Solver()
        solver.ensure_vars(2)
        solver.add_clause([1, 2])
        assert solver.solve()
        model = solver.get_model()
        blocking = [-lit if model[lit] else lit for lit in (1, 2)]
        solver.add_clause(blocking)
        assert solver.solve()
        flipped = solver.get_model()
        assert flipped != model

    def test_get_model_complete_fills_unassigned_vars(self):
        solver = Solver()
        solver.add_clause([1])
        assert solver.solve()
        # Variables allocated after the solve are unknown to the model...
        solver.ensure_vars(3)
        assert 3 not in solver.get_model()
        # ...unless a completed model is requested.
        completed = solver.get_model(complete=True)
        assert completed[1] is True
        assert set(completed) == {1, 2, 3}


class TestAssumptions:
    def test_sat_under_assumptions(self):
        solver = Solver()
        solver.add_clause([-1, 2])
        assert solver.solve([1])
        assert solver.model_value(2) is True

    def test_unsat_under_assumptions_but_sat_without(self):
        solver = Solver()
        solver.add_clause([-1, 2])
        solver.add_clause([-2, -3])
        assert not solver.solve([1, 3])
        assert solver.solve()
        assert solver.solve([1])

    def test_core_is_subset_of_assumptions(self):
        solver = Solver()
        solver.add_clause([-1, -2])
        assert not solver.solve([1, 2, 3])
        core = solver.unsat_core()
        assert set(core) <= {1, 2, 3}
        assert core

    def test_core_is_actually_unsat(self):
        solver = Solver()
        solver.add_clause([-1, -2])
        solver.add_clause([-3, -4])
        assert not solver.solve([1, 2, 3, 4])
        core = solver.unsat_core()
        # Re-solving under only the core must still be UNSAT.
        assert not solver.solve(core)

    def test_contradictory_assumptions(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert not solver.solve([3, -3])
        core = solver.unsat_core()
        assert set(core) <= {3, -3}

    def test_assumption_on_fresh_variable(self):
        solver = Solver()
        solver.add_clause([1])
        assert solver.solve([5])
        assert solver.model_value(5) is True


class TestSelectorPattern:
    """The usage pattern the MaxSAT layer relies on: selector variables."""

    def test_enable_disable_clause_groups(self):
        solver = Solver()
        # Group A (selector 10): x1 must be true.  Group B (selector 11): x1 false.
        solver.add_clause([-10, 1])
        solver.add_clause([-11, -1])
        assert solver.solve([10])
        assert solver.solve([11])
        assert not solver.solve([10, 11])
        core = set(solver.unsat_core())
        assert core <= {10, 11}
        assert len(core) == 2


@settings(max_examples=120, deadline=None)
@given(
    st.lists(
        st.lists(
            st.integers(min_value=-6, max_value=6).filter(lambda x: x != 0),
            min_size=1,
            max_size=4,
        ),
        min_size=1,
        max_size=18,
    )
)
def test_random_formulas_match_brute_force(clauses):
    cleaned = []
    for clause in clauses:
        normalized = normalize_clause(clause)
        if normalized is not None:
            cleaned.append(normalized)
    solver = Solver()
    for clause in cleaned:
        solver.add_clause(clause)
    expected = brute_force_sat(6, cleaned)
    assert solver.solve() == expected


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.lists(
            st.integers(min_value=-5, max_value=5).filter(lambda x: x != 0),
            min_size=1,
            max_size=3,
        ),
        min_size=1,
        max_size=12,
    ),
    st.lists(
        st.integers(min_value=-5, max_value=5).filter(lambda x: x != 0),
        max_size=3,
        unique_by=abs,
    ),
)
def test_assumptions_equivalent_to_unit_clauses(clauses, assumptions):
    solver = Solver()
    for clause in clauses:
        solver.add_clause(clause)
    under_assumptions = solver.solve(assumptions)

    reference = Solver()
    for clause in clauses:
        reference.add_clause(clause)
    for lit in assumptions:
        reference.add_clause([lit])
    assert under_assumptions == reference.solve()
