"""Tests for the concolic tracer: trace formulas of failing executions."""

from __future__ import annotations

import pytest

from repro.concolic import ConcolicTracer, TraceError
from repro.lang import Interpreter, parse_program
from repro.maxsat import solve_maxsat
from repro.sat import Solver
from repro.spec import Specification

MOTIVATING = """
int Array[3] = {10, 20, 30};
int testme(int index) {
    if (index != 1) {
        index = 2;
    } else {
        index = index + 2;
    }
    int i = index;
    assert(i >= 0 && i < 3);
    return Array[i];
}
int main(int index) {
    return testme(index);
}
"""

GOLDEN_OUTPUT_PROGRAM = """
int scale(int x) {
    return x * 3;
}
int main(int x) {
    int doubled = scale(x);
    return doubled + 1;
}
"""

LOOP_PROGRAM = """
int main(int n) {
    int total = 0;
    int i = 0;
    while (i < n) {
        total = total + i;
        i = i + 1;
    }
    assert(total < 100);
    return total;
}
"""


def formula_satisfiable(formula, extra_clauses=()):
    """Check satisfiability of hard clauses + all group clauses together."""
    solver = Solver()
    solver.ensure_vars(formula.num_vars)
    for clause in formula.hard:
        solver.add_clause(clause)
    for clauses in formula.groups.values():
        for clause in clauses:
            solver.add_clause(clause)
    for clause in extra_clauses:
        solver.add_clause(clause)
    return solver.solve()


class TestTraceConstruction:
    def test_requires_failing_test(self):
        tracer = ConcolicTracer(parse_program(MOTIVATING))
        with pytest.raises(TraceError):
            tracer.trace([0], Specification.assertion())

    def test_extended_trace_formula_is_unsat(self):
        # Phi = test-input /\ TF /\ assertion must be unsatisfiable for a
        # failing run (Section 2).
        tracer = ConcolicTracer(parse_program(MOTIVATING))
        formula = tracer.trace([1], Specification.assertion())
        assert not formula_satisfiable(formula)

    def test_trace_formula_without_assertion_is_sat(self):
        # The trace formula itself (without the hard post-condition) encodes a
        # feasible execution, so hard input clauses + groups minus the final
        # assertion clause must be satisfiable.  We rebuild it by dropping the
        # last hard clause (the assertion unit).
        tracer = ConcolicTracer(parse_program(MOTIVATING))
        formula = tracer.trace([1], Specification.assertion())
        solver = Solver()
        solver.ensure_vars(formula.num_vars)
        for clause in formula.hard[:-1]:
            solver.add_clause(clause)
        for clauses in formula.groups.values():
            for clause in clauses:
                solver.add_clause(clause)
        assert solver.solve()

    def test_groups_map_to_executed_lines(self):
        tracer = ConcolicTracer(parse_program(MOTIVATING))
        formula = tracer.trace([1], Specification.assertion())
        lines = formula.lines
        # The source string starts with a newline, so "int Array..." is line 2.
        # The executed path visits the branch (line 4), the else assignment
        # (line 7), and the local declaration (line 9).
        assert 4 in lines
        assert 7 in lines
        assert 9 in lines
        # The then-branch assignment (line 5) was *not* executed.
        assert 5 not in lines

    def test_test_inputs_recorded(self):
        tracer = ConcolicTracer(parse_program(MOTIVATING))
        formula = tracer.trace([1], Specification.assertion())
        assert formula.test_inputs == {"index": 1}

    def test_steps_and_assignment_counts(self):
        tracer = ConcolicTracer(parse_program(LOOP_PROGRAM))
        formula = tracer.trace([20], Specification.assertion())
        assert formula.num_assignments >= 2 + 2 * 14
        kinds = {step.kind for step in formula.steps}
        assert "loop-guard" in kinds
        assert "assign" in kinds

    def test_maxsat_on_motivating_example_blames_the_buggy_line(self):
        tracer = ConcolicTracer(parse_program(MOTIVATING))
        formula = tracer.trace([1], Specification.assertion())
        wcnf, _ = formula.to_wcnf()
        # The localization default engine (``auto`` may pick MSU3, which
        # legitimately reports a different cost-1 correction set).
        result = solve_maxsat(wcnf, strategy="hitting-set")
        assert result.satisfiable
        assert result.cost == 1
        lines = {group.line for group in result.falsified_labels}
        assert lines == {7}  # index = index + 2

    def test_golden_output_spec(self):
        program = parse_program(GOLDEN_OUTPUT_PROGRAM)
        # Correct output for x=4 would be 13; pretend the golden output is 9
        # (as if scale() should have doubled instead of tripled).
        tracer = ConcolicTracer(program)
        formula = tracer.trace([4], Specification.return_value(9))
        assert not formula_satisfiable(formula)
        wcnf, _ = formula.to_wcnf()
        result = solve_maxsat(wcnf)
        assert result.satisfiable
        lines = {group.line for group in result.falsified_labels}
        # Either the multiplication inside scale() or one of the statements in
        # main can be changed to obtain the expected output.
        assert lines & {3, 6, 7}

    def test_golden_output_matching_run_rejected(self):
        program = parse_program(GOLDEN_OUTPUT_PROGRAM)
        tracer = ConcolicTracer(program)
        with pytest.raises(TraceError):
            tracer.trace([4], Specification.return_value(13))

    def test_loop_iteration_groups(self):
        tracer = ConcolicTracer(parse_program(LOOP_PROGRAM), loop_iteration_groups=True)
        formula = tracer.trace([20], Specification.assertion())
        iterations = {
            group.iteration for group in formula.groups if group.iteration is not None
        }
        assert len(iterations) >= 10
        # Without per-iteration groups the same lines collapse into one group.
        plain = ConcolicTracer(parse_program(LOOP_PROGRAM)).trace(
            [20], Specification.assertion()
        )
        assert len(plain.groups) < len(formula.groups)

    def test_concrete_function_reduction_shrinks_formula(self):
        program = parse_program(GOLDEN_OUTPUT_PROGRAM)
        full = ConcolicTracer(program).trace([4], Specification.return_value(9))
        reduced = ConcolicTracer(program, concrete_functions=["scale"]).trace(
            [4], Specification.return_value(9)
        )
        assert reduced.num_clauses < full.num_clauses
        assert 3 not in reduced.lines  # the concretized function contributes no clauses

    def test_hard_functions_excluded_from_groups(self):
        program = parse_program(GOLDEN_OUTPUT_PROGRAM)
        formula = ConcolicTracer(program, hard_functions=["scale"]).trace(
            [4], Specification.return_value(9)
        )
        assert all(group.function != "scale" for group in formula.groups)

    def test_nondet_inputs_become_test_inputs(self):
        source = """
        int main(int x) {
            int extra = nondet();
            assert(x + extra < 10);
            return x + extra;
        }
        """
        tracer = ConcolicTracer(parse_program(source))
        formula = tracer.trace([5], Specification.assertion(), nondet_values=[7])
        assert formula.test_inputs["x"] == 5
        assert formula.test_inputs["nondet#0"] == 7
        assert not formula_satisfiable(formula)

    def test_trace_agrees_with_interpreter_on_globals_and_arrays(self):
        source = """
        int table[4] = {1, 2, 3, 4};
        int total = 0;
        void accumulate(int i) {
            total = total + table[i];
        }
        int main(int i) {
            accumulate(i);
            accumulate(i + 1);
            assert(total != 5);
            return total;
        }
        """
        program = parse_program(source)
        result = Interpreter(program).run([1])
        assert result.assertion_failed
        formula = ConcolicTracer(program).trace([1], Specification.assertion())
        assert not formula_satisfiable(formula)
        wcnf, _ = formula.to_wcnf()
        outcome = solve_maxsat(wcnf)
        assert outcome.satisfiable and outcome.falsified
