"""Loop-bound analysis, per-loop unwind planning, and iteration-aware
localization: verdict inference, the loop lints, the planned encoding's
differential discipline, unwinding-assumption hardness, unwind-exhaustion
reporting, and the serve/splice plumbing for the new options."""

from __future__ import annotations

import pytest

from repro.analysis import analyze_source
from repro.analysis.loops import (
    BOUNDED,
    EXACT,
    INFINITE,
    PLANNED_UNWIND_CAP,
    UNKNOWN,
    effective_unwind,
    lint_loops,
    plan_unwinds,
)
from repro.bmc import BoundedModelChecker, dumps_artifact, loads_artifact
from repro.core import LocalizationSession, Specification
from repro.lang import Interpreter, parse_program
from repro.siemens.loop_corpus import (
    BOUNDED_FILL,
    DRIFTING_ACC,
    LOOP_BENCHMARKS,
    SCALE_SUM,
)
from repro.siemens.programs import LARGE_BENCHMARKS


def bounds_for(source: str, **kwargs):
    result = analyze_source(source, **kwargs)
    assert not result.has_errors or kwargs, result.diagnostics
    return result


# ---------------------------------------------------------- verdict inference


class TestLoopBoundInference:
    def test_exact_increasing(self):
        result = bounds_for(
            "int main() {\n"
            "    int i = 0;\n"
            "    int s = 0;\n"
            "    while (i < 5) {\n"
            "        s = s + i;\n"
            "        i = i + 1;\n"
            "    }\n"
            "    return s;\n"
            "}\n"
        )
        bound = result.loop_bounds[("main", 4)]
        assert (bound.verdict, bound.lo, bound.hi) == (EXACT, 5, 5)
        assert bound.induction_var == "i"

    def test_exact_decreasing_with_stride(self):
        result = bounds_for(
            "int main() {\n"
            "    int j = 10;\n"
            "    while (j > 0) {\n"
            "        j = j - 2;\n"
            "    }\n"
            "    return j;\n"
            "}\n"
        )
        bound = result.loop_bounds[("main", 3)]
        assert (bound.verdict, bound.lo, bound.hi) == (EXACT, 5, 5)

    def test_bounded_by_assume(self):
        result = bounds_for(
            "int main(int n) {\n"
            "    int i = 0;\n"
            "    assume(n > 0 && n < 8);\n"
            "    while (i < n) {\n"
            "        i = i + 1;\n"
            "    }\n"
            "    return i;\n"
            "}\n"
        )
        bound = result.loop_bounds[("main", 4)]
        assert bound.verdict == BOUNDED
        assert (bound.lo, bound.hi) == (1, 7)

    def test_unknown_when_step_not_invariant(self):
        result = bounds_for(
            "int main(int n) {\n"
            "    int i = 0;\n"
            "    while (i < 10) {\n"
            "        i = i + n;\n"
            "    }\n"
            "    return i;\n"
            "}\n"
        )
        assert result.loop_bounds[("main", 3)].verdict == UNKNOWN

    def test_infinite_loop(self):
        result = bounds_for(
            "int main() {\n"
            "    int i = 0;\n"
            "    while (1) {\n"
            "        i = i + 0;\n"
            "    }\n"
            "    return i;\n"
            "}\n"
        )
        assert result.loop_bounds[("main", 3)].verdict == INFINITE

    def test_wraparound_is_not_infinite(self):
        # i = i + 1 from 0 under `i >= 0` wraps to the negative range, so
        # the guard does eventually fail; the verdict must not claim
        # non-termination (nor a small bound).
        result = bounds_for(
            "int main() {\n"
            "    int i = 0;\n"
            "    while (i >= 0) {\n"
            "        i = i + 1;\n"
            "    }\n"
            "    return i;\n"
            "}\n"
        )
        assert result.loop_bounds[("main", 3)].verdict != INFINITE

    def test_constant_false_guard_is_exact_zero(self):
        result = bounds_for(
            "int main() {\n"
            "    int i = 9;\n"
            "    while (i < 3) {\n"
            "        i = i + 1;\n"
            "    }\n"
            "    return i;\n"
            "}\n"
        )
        bound = result.loop_bounds[("main", 3)]
        assert (bound.verdict, bound.hi) == (EXACT, 0)
        assert bound.guard_always_false

    def test_early_return_lowers_the_floor(self):
        result = bounds_for(
            "int count(int n) {\n"
            "    int i = 0;\n"
            "    while (i < 6) {\n"
            "        if (i == n) {\n"
            "            return i;\n"
            "        }\n"
            "        i = i + 1;\n"
            "    }\n"
            "    return i;\n"
            "}\n"
            "int main(int n) { return count(n); }\n"
        )
        bound = result.loop_bounds[("count", 3)]
        assert bound.lo == 0
        assert bound.hi == 6


# ----------------------------------------------------------------- loop lints


class TestLoopLints:
    DEEP = (
        "int main(int x) {\n"
        "    int i = 0;\n"
        "    int s = 0;\n"
        "    assume(x == 1);\n"
        "    while (i < 40) {\n"
        "        s = s + x;\n"
        "        i = i + 1;\n"
        "    }\n"
        "    assert(s == 40);\n"
        "    return s;\n"
        "}\n"
    )

    def test_unwind_insufficient_is_an_error(self):
        result = analyze_source(self.DEEP, unwind=16)
        codes = {(d.code, d.severity) for d in result.diagnostics}
        assert ("unwind-insufficient", "error") in codes
        assert result.has_errors

    def test_planning_clears_unwind_insufficient(self):
        result = analyze_source(self.DEEP, unwind=16, unwind_planning=True)
        assert not any(d.code == "unwind-insufficient" for d in result.diagnostics)

    def test_raising_unwind_clears_it_too(self):
        result = analyze_source(self.DEEP, unwind=64)
        assert not any(d.code == "unwind-insufficient" for d in result.diagnostics)

    def test_nonterminating_loop_warning(self):
        result = analyze_source(
            "int main() {\n"
            "    int i = 0;\n"
            "    while (1) {\n"
            "        i = i + 0;\n"
            "    }\n"
            "    return i;\n"
            "}\n"
        )
        diagnostic = next(
            d for d in result.diagnostics if d.code == "nonterminating-loop"
        )
        assert diagnostic.severity == "warning"
        assert diagnostic.line == 3

    def test_constant_false_guard_warning(self):
        result = analyze_source(
            "int main() {\n"
            "    int i = 9;\n"
            "    while (i < 3) {\n"
            "        i = i + 1;\n"
            "    }\n"
            "    return i;\n"
            "}\n"
        )
        assert any(d.code == "constant-false-guard" for d in result.diagnostics)

    def test_cli_reports_loop_lints(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        path = tmp_path / "deep.mc"
        path.write_text(self.DEEP)
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "unwind-insufficient" in out
        assert main([str(path), "--unwind-planning"]) == 0
        assert main([str(path), "--unwind", "64"]) == 0

    def test_effective_unwind_and_cap(self):
        result = analyze_source(self.DEEP)
        bound = result.loop_bounds[("main", 5)]
        assert effective_unwind(bound, 16, False) == 16
        assert effective_unwind(bound, 16, True) == 40
        plans = plan_unwinds(result.loop_bounds, 16)
        assert plans[("main", 5)] == (40, True)
        # Bounds beyond the planning cap keep the global unwind.
        deep = self.DEEP.replace("i < 40", f"i < {PLANNED_UNWIND_CAP + 40}")
        capped = analyze_source(deep)
        assert plan_unwinds(capped.loop_bounds, 16) == {}

    def test_lints_survive_incremental_replay(self):
        # Loop bounds are cached per function and unwind-dependent lints
        # re-derived: a warm re-analysis of the same source must reproduce
        # the unwind-insufficient error.
        cold = analyze_source(self.DEEP, unwind=16)
        warm = lint_loops(cold.loop_bounds.values(), unwind=16)
        assert any(d.code == "unwind-insufficient" for d in warm)


# ------------------------------------------------------------ unwind planning


class TestUnwindPlanning:
    def test_corpus_faults_fail_under_the_interpreter(self):
        for bench in LOOP_BENCHMARKS:
            outcome = Interpreter(bench.program()).run(list(bench.failing_test))
            assert outcome.assertion_failed, bench.name

    def test_planning_prunes_at_least_thirty_percent(self):
        reductions = {}
        for bench in LOOP_BENCHMARKS:
            program = bench.program()
            flat = BoundedModelChecker(
                program, group_statements=True
            ).compile_program()
            planned = BoundedModelChecker(
                program, group_statements=True, unwind_planning=True
            ).compile_program()
            assert planned.planned_loops >= 1, bench.name
            reductions[bench.name] = 1 - planned.num_clauses / flat.num_clauses
        assert max(reductions.values()) >= 0.30, reductions

    @pytest.mark.parametrize("bench", [SCALE_SUM, BOUNDED_FILL], ids=lambda b: b.name)
    def test_candidate_lines_identical_planning_on_off(self, bench):
        program = bench.program()
        lines = {}
        for planning in (False, True):
            with LocalizationSession(program, unwind_planning=planning) as session:
                report = session.localize(
                    list(bench.failing_test), bench.specification()
                )
            lines[planning] = set(report.lines)
            assert any(line in bench.fault_lines for line in report.lines)
        assert lines[False] == lines[True]

    def test_planning_changes_the_artifact_key(self):
        from repro.bmc import artifact_key

        program = SCALE_SUM.program()
        flat = BoundedModelChecker(program, group_statements=True)
        planned = BoundedModelChecker(
            program, group_statements=True, unwind_planning=True
        )
        assert artifact_key(SCALE_SUM.source, flat.compile_options("main")) != (
            artifact_key(SCALE_SUM.source, planned.compile_options("main"))
        )

    def test_plans_round_trip_through_the_artifact(self):
        program = SCALE_SUM.program()
        compiled = BoundedModelChecker(
            program, group_statements=True, unwind_planning=True
        ).compile_program()
        restored = loads_artifact(dumps_artifact(compiled))
        assert restored.unwind_plans == compiled.unwind_plans
        assert restored.truncated_loops == compiled.truncated_loops
        assert restored.planned_loops == compiled.planned_loops


@pytest.mark.slow
class TestTable3Differential:
    """The safety net for dropping unwinding assumptions: per-loop planning
    must not move any Table 3 program's candidate lines."""

    @pytest.mark.parametrize("bench", LARGE_BENCHMARKS, ids=lambda b: b.name)
    def test_candidate_lines_identical(self, bench):
        faulty = bench.faulty_program()
        flat = BoundedModelChecker(
            faulty, group_statements=True
        ).compile_program()
        planned = BoundedModelChecker(
            faulty, group_statements=True, unwind_planning=True
        ).compile_program()
        if planned.signature == flat.signature:
            # No loop got a plan: the encodings are identical, so the
            # candidate sets are too.
            assert planned.unwind_plans == {}
            return
        spec = bench.specification()
        test = list(bench.failing_test)
        lines = {}
        for compiled in (flat, planned):
            session = LocalizationSession.from_compiled(compiled, max_candidates=8)
            with session:
                lines[id(compiled)] = set(session.localize(test, spec).lines)
        assert lines[id(flat)] == lines[id(planned)]


# -------------------------------------------- unwinding-assumption hardness


class TestUnwindingAssumptionHardness:
    EXACT_AT_BOUND = (
        "int main(int x) {\n"
        "    int i = 0;\n"
        "    while (i < x) {\n"
        "        i = i + 1;\n"
        "    }\n"
        "    assert(i == 4);\n"
        "    return i;\n"
        "}\n"
    )

    def test_guard_group_holds_only_binding_clauses(self):
        # The guard's relaxable group must contain exactly the two binding
        # clauses per unrolling; the guard circuit itself is hard.  (The
        # regression: structure-hashed gates defined inside the group let
        # the localizer vacate the unwinding assumption by relaxing it.)
        program = parse_program(self.EXACT_AT_BOUND, name="exact-bound")
        compiled = BoundedModelChecker(
            program, unwind=4, group_statements=True
        ).compile_program()
        guard_group = next(g for g in compiled.groups if g.line == 3)
        clauses = compiled.groups[guard_group]
        assert len(clauses) == 2 * 4
        assert all(len(clause) == 2 for clause in clauses)

    def test_failure_beyond_bound_is_never_blamed_on_the_guard_alone(self):
        # x = 5 needs a fifth iteration the unwind-4 encoding cannot run.
        # Flipping the loop guard's group alone must not "explain" the
        # failure by disabling the truncation assumption; the honest
        # minimal explanation relaxes guard and body together.
        program = parse_program(self.EXACT_AT_BOUND, name="exact-bound")
        with LocalizationSession(program, unwind=4) as session:
            report = session.localize([5], Specification.assertion())
        assert report.candidates
        for candidate in report.candidates:
            assert {group.line for group in candidate.groups} != {3}

    def test_loop_exiting_exactly_at_bound_stays_consistent(self):
        # Trip count == unwind: the final truncation guard is evaluated on
        # the last state.  The encoding must accept the real execution
        # (no candidates on a passing run).
        program = parse_program(self.EXACT_AT_BOUND, name="exact-bound")
        with LocalizationSession(program, unwind=4) as session:
            report = session.localize([4], Specification.assertion())
        assert report.candidates == []


# ------------------------------------------------------------ unwind exhaustion


class TestUnwindExhaustion:
    def test_provable_truncation_is_an_error_and_flags_reports(self):
        program = parse_program(TestLoopLints.DEEP, name="deep-loop")
        with LocalizationSession(program) as session:
            compiled = session.compiled
            assert ("main", 5) in compiled.truncated_loops
            assert any(
                d.code == "unwind-insufficient" and d.severity == "error"
                for d in compiled.diagnostics
            )
            report = session.localize([1], Specification.assertion())
        # The truncated encoding "localizes" a correct program — the flag
        # is the reader's warning that candidates came from a prefix.
        assert report.unwind_truncated

    def test_planning_unrolls_to_the_proven_bound(self):
        program = parse_program(TestLoopLints.DEEP, name="deep-loop")
        with LocalizationSession(program, unwind_planning=True) as session:
            compiled = session.compiled
            assert compiled.truncated_loops == ()
            assert compiled.unwind_plans[("main", 5)] == (40, True)
            assert not any(
                d.code == "unwind-insufficient" for d in compiled.diagnostics
            )
            report = session.localize([1], Specification.assertion())
        assert not report.unwind_truncated
        # The program is correct once fully unrolled: nothing to localize.
        assert report.candidates == []


# ------------------------------------------------------- iteration-aware groups


class TestIterationGroups:
    def test_candidates_carry_line_and_iteration(self):
        program = DRIFTING_ACC.program()
        with LocalizationSession(program, loop_iteration_groups=True) as session:
            report = session.localize(
                list(DRIFTING_ACC.failing_test), DRIFTING_ACC.specification()
            )
        fault_line = DRIFTING_ACC.fault_lines[0]
        per_iteration = {
            group.iteration
            for candidate in report.candidates
            for group in candidate.groups
            if group.line == fault_line and candidate.cost == 1
        }
        # Relaxing any single iteration's copy of the faulty accumulation
        # repairs the run, so every iteration appears as its own candidate.
        assert per_iteration == {1, 2, 3, 4, 5, 6}
        descriptions = [c.describe() for c in report.candidates]
        assert any("iteration" in d for d in descriptions)

    def test_off_by_default_keeps_line_granularity(self):
        program = DRIFTING_ACC.program()
        with LocalizationSession(program) as session:
            report = session.localize(
                list(DRIFTING_ACC.failing_test), DRIFTING_ACC.specification()
            )
        assert all(
            group.iteration is None
            for candidate in report.candidates
            for group in candidate.groups
        )

    def test_function_called_inside_and_outside_a_loop(self):
        # A callee's statements must not inherit the caller's iteration
        # counter — the same line would otherwise land in differently-keyed
        # groups (unsortable None/int mixes) depending on the call site.
        source = (
            "int bump(int v) {\n"
            "    return v + 1;\n"
            "}\n"
            "int main(int x) {\n"
            "    int i = 0;\n"
            "    int s = bump(x);\n"
            "    while (i < 3) {\n"
            "        s = bump(s);\n"
            "        i = i + 1;\n"
            "    }\n"
            "    assert(s == 0);\n"
            "    return s;\n"
            "}\n"
        )
        program = parse_program(source, name="mixed-calls")
        with LocalizationSession(program, loop_iteration_groups=True) as session:
            report = session.localize([1], Specification.assertion())
        assert report.candidates

    def test_line_iteration_pairs_match_concolic_trace(self):
        # The BMC's unrolled iterations and the concolic tracer's dynamic
        # ones agree on (line, iteration) keys for a straight-line loop.
        from repro.concolic import ConcolicTracer

        program = DRIFTING_ACC.program()
        formula = ConcolicTracer(program, loop_iteration_groups=True).trace(
            list(DRIFTING_ACC.failing_test), DRIFTING_ACC.specification()
        )
        compiled = BoundedModelChecker(
            program, group_statements=True, loop_iteration_groups=True
        ).compile_program()
        fault_line = DRIFTING_ACC.fault_lines[0]
        concolic_keys = {
            (g.line, g.iteration) for g in formula.groups if g.line == fault_line
        }
        bmc_keys = {
            (g.line, g.iteration) for g in compiled.groups if g.line == fault_line
        }
        assert concolic_keys == {(fault_line, k) for k in range(1, 7)}
        # The BMC unrolls to the global bound, so its keys are a superset.
        assert concolic_keys <= bmc_keys


# ------------------------------------------------------------ splice with loops


class TestSpliceWithLoops:
    BASE = (
        "int pad(int v) {\n"
        "    return v + 2;\n"
        "}\n"
        "int main(int x) {\n"
        "    int i = 0;\n"
        "    int s = 0;\n"
        "    while (i < 5) {\n"
        "        s = s + x;\n"
        "        i = i + 1;\n"
        "    }\n"
        "    assert(s + pad(x) < 100);\n"
        "    return s;\n"
        "}\n"
    )

    @staticmethod
    def compile_planned(source: str, name: str, **kwargs):
        program = parse_program(source, name=name)
        return BoundedModelChecker(
            program, group_statements=True, unwind_planning=True, **kwargs
        ).compile_program()

    def test_unchanged_plans_splice_and_match_cold(self):
        from repro.bmc.splice import splice_compile

        base = self.compile_planned(self.BASE, "loops-v1")
        edited = self.BASE.replace("v + 2", "v + 3")
        program = parse_program(edited, name="loops-v2")
        warm = splice_compile(
            base,
            BoundedModelChecker(
                program, group_statements=True, unwind_planning=True
            ),
        )
        assert warm is not None
        cold = self.compile_planned(edited, "loops-v2")
        assert warm.signature == cold.signature
        assert warm.unwind_plans == cold.unwind_plans == {("main", 7): (5, True)}

    def test_changed_loop_function_reencodes_with_its_new_plan(self):
        from repro.bmc.splice import splice_compile

        source = (
            "int burst(int x) {\n"
            "    int k = 0;\n"
            "    int t = 0;\n"
            "    while (k < 6) {\n"
            "        t = t + x;\n"
            "        k = k + 1;\n"
            "    }\n"
            "    return t;\n"
            "}\n"
            "int main(int x) {\n"
            "    assert(burst(x) < 50);\n"
            "    return 0;\n"
            "}\n"
        )
        base = self.compile_planned(source, "burst-v1")
        assert base.unwind_plans == {("burst", 4): (6, True)}
        edited = source.replace("k < 6", "k < 3")
        program = parse_program(edited, name="burst-v2")
        warm = splice_compile(
            base,
            BoundedModelChecker(
                program, group_statements=True, unwind_planning=True
            ),
        )
        cold = self.compile_planned(edited, "burst-v2")
        if warm is not None:
            assert warm.signature == cold.signature
            assert warm.unwind_plans == cold.unwind_plans
        assert cold.unwind_plans == {("burst", 4): (3, True)}

    def test_plan_ripple_into_unchanged_function_declines(self):
        # The loop lives in an *unchanged* function but its bound flows
        # from a changed callee: replaying the recorded unrolling would be
        # unsound, so the unwind-plan precondition must decline.  Narrowing
        # is off to prove the decline comes from the unwind-plan check.
        from repro.bmc.splice import splice_compile

        source = (
            "int limit() {\n"
            "    return 6;\n"
            "}\n"
            "int walk(int x) {\n"
            "    int i = 0;\n"
            "    int n = limit();\n"
            "    int s = 0;\n"
            "    while (i < n) {\n"
            "        s = s + x;\n"
            "        i = i + 1;\n"
            "    }\n"
            "    return s;\n"
            "}\n"
            "int main(int x) {\n"
            "    assert(walk(x) < 100);\n"
            "    return 0;\n"
            "}\n"
        )
        base = self.compile_planned(
            source, "walk-v1", analysis_narrowing=False
        )
        assert base.unwind_plans == {("walk", 8): (6, True)}
        edited = source.replace("return 6;", "return 9;")
        program = parse_program(edited, name="walk-v2")
        outcome: dict = {}
        warm = splice_compile(
            base,
            BoundedModelChecker(
                program,
                group_statements=True,
                unwind_planning=True,
                analysis_narrowing=False,
            ),
            outcome=outcome,
        )
        assert warm is None
        assert outcome.get("declined")
        cold = self.compile_planned(edited, "walk-v2", analysis_narrowing=False)
        assert cold.unwind_plans == {("walk", 8): (9, True)}


# ----------------------------------------------------------- serve round trip


@pytest.fixture(scope="module")
def loop_daemon():
    from repro.serve import Client, ServerThread

    with ServerThread(workers=1, max_sessions_per_worker=4) as handle:
        with Client(tcp=handle.tcp_address) as probe:
            probe.wait_until_ready()
        yield handle


class TestServeLoopOptions:
    OPTIONS = {
        "name": "drifting_acc",
        "unwind_planning": True,
        "loop_iteration_groups": True,
    }

    def test_iteration_groups_round_trip_the_wire(self, loop_daemon):
        from repro.serve import Client, canonical_report_bytes

        with Client(tcp=loop_daemon.tcp_address) as client:
            reply = client.localize(
                test=list(DRIFTING_ACC.failing_test),
                spec={"kind": "assertion", "expected": []},
                program=DRIFTING_ACC.source,
                options=dict(self.OPTIONS),
            )
        assert reply["ok"]
        wire = reply["report"]
        assert wire["unwind_truncated"] is False
        assert any(
            "iteration" in candidate["description"]
            for candidate in wire["candidates"]
        )
        with LocalizationSession(
            DRIFTING_ACC.program(),
            unwind_planning=True,
            loop_iteration_groups=True,
        ) as session:
            baseline = session.localize(
                list(DRIFTING_ACC.failing_test), DRIFTING_ACC.specification()
            )
        assert canonical_report_bytes(wire) == canonical_report_bytes(baseline)

    def test_loop_options_are_part_of_the_artifact_key(self, loop_daemon):
        from repro.serve import Client

        with Client(tcp=loop_daemon.tcp_address) as client:
            flat = client.compile(DRIFTING_ACC.source, name="drifting-key")
            planned = client.compile(
                DRIFTING_ACC.source,
                name="drifting-key",
                options={"unwind_planning": True, "loop_iteration_groups": True},
            )
        assert flat["artifact"] != planned["artifact"]

    def test_truncated_loop_is_rejected_until_planned(self, loop_daemon):
        import socket

        from repro.serve import Client, protocol

        host, port = loop_daemon.tcp_address
        with socket.create_connection((host, port), timeout=10) as sock:
            protocol.send_frame(
                sock,
                {
                    "op": "compile",
                    "program": TestLoopLints.DEEP,
                    "options": {"name": "deep-loop"},
                },
            )
            response = protocol.recv_frame(sock)
        assert response["ok"] is False
        assert response["error_kind"] == "rejected"
        assert {d["code"] for d in response["diagnostics"]} == {
            "unwind-insufficient"
        }
        with Client(tcp=loop_daemon.tcp_address) as client:
            reply = client.compile(
                TestLoopLints.DEEP,
                name="deep-loop",
                options={"unwind_planning": True},
            )
        assert reply["ok"]
        assert reply["diagnostics"] == []
