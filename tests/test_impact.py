"""Change-impact analysis: canonical hashes, fingerprint diffs, closures.

The edge cases the ISSUE names explicitly:

* renamed-but-identical functions are recognized via the alpha-renamed
  body hash (including recursive functions, whose self-calls canonicalize
  to a placeholder);
* a changed global initializer marks even "unchanged" functions that touch
  it as analysis-impacted;
* a signature (interface) change ripples through call summaries: callers
  are encoding-impacted, transitive callees analysis-impacted.

Plus the properties the splice engine relies on: hashes are line-number
free, and line maps recover the positional correspondence for shifted but
structurally identical bodies.
"""

from __future__ import annotations

import textwrap

from repro.analysis.impact import (
    build_line_map,
    compute_impact,
    diff_fingerprints,
    fingerprint_program,
    function_signature,
    program_line_map,
)
from repro.lang import parse_program


def _parse(source: str, name: str = "prog"):
    return parse_program(textwrap.dedent(source), name=name)


BASE = """\
int limit = 10;
int scale(int x) {
    return x * 2;
}
int clamp(int x) {
    if (x > limit) {
        return limit;
    }
    return x;
}
int main(int a) {
    int s = scale(a);
    return clamp(s);
}
"""


def test_identical_programs_have_identical_fingerprints():
    left = fingerprint_program(_parse(BASE))
    right = fingerprint_program(_parse(BASE, name="other-name"))
    changes = diff_fingerprints(left, right)
    assert changes.is_identical
    assert left.function_hashes() == right.function_hashes()


def test_hashes_are_line_number_free():
    shifted = "\n\n\n" + BASE  # everything moves three lines down
    base_fp = fingerprint_program(_parse(BASE))
    new_program = _parse(shifted)
    new_fp = fingerprint_program(new_program)
    assert diff_fingerprints(base_fp, new_fp).is_identical
    mapping = program_line_map(base_fp, new_program)
    assert mapping is not None
    # Every mapped statement moved exactly three lines.
    assert mapping and all(new == old + 3 for old, new in mapping.items())


def test_changed_function_is_detected_and_closed_over_callers():
    changed = BASE.replace("return x * 2;", "return x * 3;")
    base_fp = fingerprint_program(_parse(BASE))
    new_program = _parse(changed)
    changes = diff_fingerprints(base_fp, fingerprint_program(new_program))
    assert changes.changed == ("scale",)
    impact = compute_impact(new_program, changes)
    assert impact.changed == {"scale"}
    # main calls scale, so its inlined subtree differs; clamp does not.
    assert impact.encoding_impacted == {"scale", "main"}
    assert "clamp" not in impact.encoding_impacted
    assert 0.0 < impact.impact_fraction < 1.0


def test_renamed_but_identical_function_is_recognized():
    renamed = BASE.replace("scale", "rescale")
    base_fp = fingerprint_program(_parse(BASE))
    new_fp = fingerprint_program(_parse(renamed))
    changes = diff_fingerprints(base_fp, new_fp)
    assert changes.renamed == (("scale", "rescale"),)
    assert changes.added == ("rescale",)
    assert changes.removed == ("scale",)
    # The caller textually changed (it calls the new name).
    assert "main" in changes.changed


def test_recursive_function_survives_rename_detection():
    source = """\
    int fact(int n) {
        if (n <= 1) {
            return 1;
        }
        return n * fact(n - 1);
    }
    int main(int a) {
        return fact(a);
    }
    """
    renamed = source.replace("fact", "factorial")
    base_fp = fingerprint_program(_parse(source))
    new_fp = fingerprint_program(_parse(renamed))
    changes = diff_fingerprints(base_fp, new_fp)
    assert ("fact", "factorial") in changes.renamed


def test_changed_global_marks_touching_functions_analysis_impacted():
    changed = BASE.replace("int limit = 10;", "int limit = 12;")
    base_fp = fingerprint_program(_parse(BASE))
    new_program = _parse(changed)
    changes = diff_fingerprints(base_fp, fingerprint_program(new_program))
    assert changes.changed == ()  # no function body changed...
    assert changes.changed_globals == ("limit",)
    impact = compute_impact(new_program, changes)
    # ...yet clamp reads the global, so its fixpoint inputs differ.
    assert "clamp" in impact.analysis_impacted
    # Nothing needs *re-encoding* structurally — the splice layer treats a
    # changed-global diff as a full decline separately.
    assert impact.changed == set()


def test_signature_change_ripples_through_call_summaries():
    changed = BASE.replace("int scale(int x) {", "int scale(int x, int y) {").replace(
        "return x * 2;", "return x * 2 + y;"
    ).replace("scale(a)", "scale(a, 1)")
    base_fp = fingerprint_program(_parse(BASE))
    new_program = _parse(changed)
    changes = diff_fingerprints(base_fp, fingerprint_program(new_program))
    assert "scale" in changes.changed
    assert "main" in changes.changed  # the call site changed too
    impact = compute_impact(new_program, changes)
    assert {"scale", "main"} <= impact.encoding_impacted
    # Analysis impact flows into callees as well: clamp receives arguments
    # computed from the changed scale result.
    assert "clamp" in impact.analysis_impacted


def test_arity_is_part_of_the_hash_even_with_unused_parameter():
    left = function_signature(_parse("int f(int a) { return 1; }\n").function("f"))
    right = function_signature(
        _parse("int f(int a, int b) { return 1; }\n").function("f")
    )
    assert left.exact_hash != right.exact_hash
    assert left.body_hash != right.body_hash


def test_free_globals_and_calls_are_summarized():
    sig = function_signature(_parse(BASE).function("clamp"))
    assert sig.free_globals == ("limit",)
    sig_main = function_signature(_parse(BASE).function("main"))
    assert set(sig_main.calls) == {"scale", "clamp"}


def test_build_line_map_rejects_structural_mismatch():
    fn_a = _parse(BASE).function("clamp")
    fn_b = _parse(BASE.replace("return limit;", "return limit;\n        return limit;")).function(
        "clamp"
    )
    sig_a = function_signature(fn_a)
    assert build_line_map(sig_a.line_sequence, fn_b) is None
