"""Cross-test reuse of post-blocking cores in the hitting-set engine.

The CoMSS enumeration of a later failing test revisits the same blocking
contexts as earlier tests; the engine archives the cores it mined *after*
blocking started, keyed by the encoding's gate-cache signature plus the
exact retired-binding set, and seeds the equivalent moment of the next
test's enumeration from them.  Reuse must be behaviour-preserving: the
enumerated correction sets are identical with a cold engine.
"""

from __future__ import annotations

from repro.core.session import LocalizationSession
from repro.lang import parse_program
from repro.maxsat import WCNF
from repro.maxsat.hitting_set import HittingSetMaxSat
from repro.spec import Specification


def _load_engine() -> HittingSetMaxSat:
    """Three unit softs; the layer clauses force post-blocking core mining.

    The layer adds ``-1 or -2`` and ``-1 or -3``.  The first CoMSS retires
    soft ``[1]`` with a unit blocking clause, which *forces* variable 1 —
    only then does ``-1 or -3`` bite, so the core ``{3}`` is necessarily
    mined after blocking started (a post-blocking core).
    """
    wcnf = WCNF()
    for _ in range(3):
        wcnf.new_var()
    wcnf.add_soft([1])
    wcnf.add_soft([2])
    wcnf.add_soft([3])
    wcnf.signature = "feedbeef00000000"
    engine = HittingSetMaxSat()
    engine.load(wcnf)
    return engine


def _run_layer(engine: HittingSetMaxSat) -> list[tuple[int, ...]]:
    """One per-test layer: assert the units, enumerate and block CoMSSes."""
    enumerated: list[tuple[int, ...]] = []
    engine.push_layer()
    try:
        engine.add_hard([-1, -2])
        engine.add_hard([-1, -3])
        while True:
            result = engine.solve_current()
            if not result.satisfiable or not result.falsified:
                break
            enumerated.append(tuple(result.falsified))
            engine.block(result.falsified)
    finally:
        engine.pop_layer()
    return enumerated


class TestPostBlockingArchive:
    def test_post_blocking_cores_are_archived(self):
        engine = _load_engine()
        first = _run_layer(engine)
        assert first, "the layer must enumerate at least one correction set"
        assert engine._stale_post_cores, "post-blocking cores were not archived"
        for (signature, context), cores in engine._stale_post_cores.items():
            assert signature == engine.signature
            assert isinstance(context, frozenset)
            assert context, "post-blocking context records the retired set"
            assert cores

    def test_reuse_preserves_enumeration(self):
        warm = _load_engine()
        first = _run_layer(warm)
        second = _run_layer(warm)  # seeds from the archived cores
        cold = _load_engine()
        reference = _run_layer(cold)
        assert first == reference
        assert second == reference

    def test_session_reuse_preserves_candidates(self):
        source = (
            "int main(int x) {\n"
            "    int a = x + 1;\n"
            "    int b = a * 2;\n"
            "    int c = b - x;\n"
            "    return c;\n"
            "}\n"
        )
        program = parse_program(source, name="core-archive")

        def localize(tests):
            with LocalizationSession(
                program, strategy="hitting-set", max_candidates=4
            ) as session:
                return [
                    session.localize(t, Specification.return_value(0)) for t in tests
                ]

        warm = localize([[2], [3]])
        cold = localize([[3]])
        assert [c.lines for c in warm[1].candidates] == [
            c.lines for c in cold[0].candidates
        ]

    def test_archive_survives_reload_of_same_signature(self):
        engine = _load_engine()
        _run_layer(engine)
        post_shelf = {k: list(v) for k, v in engine._stale_post_cores.items()}
        assert post_shelf
        wcnf = engine._wcnf.copy()
        engine.load(wcnf)  # same signature: archives survive
        assert engine._stale_post_cores == post_shelf
        other = engine._wcnf.copy()
        other.signature = "0" * 16
        engine.load(other)  # different signature: archives reset
        assert engine._stale_post_cores == {}
        assert engine._stale_cores == []

    def test_subsumed_context_promotes_core_exact_lookup_misses(self):
        """Subsumption-aware lookup (ROADMAP item): a core archived at
        blocking context {0} is reused at context {0, 1}, where the
        exact-match lookup has no shelf at all."""
        wcnf = WCNF()
        for _ in range(6):
            wcnf.new_var()
        wcnf.add_soft([1, 2])  # binding 0 (non-unit: blocking stays satisfiable)
        wcnf.add_soft([3, 4])  # binding 1
        wcnf.add_soft([5])     # binding 2
        wcnf.add_soft([6])     # binding 3
        wcnf.signature = "feedbeef00000000"
        engine = HittingSetMaxSat()
        engine.load(wcnf)
        engine.push_layer()
        try:
            # Reach blocking context {0, 1} the way Algorithm 1 would:
            # two CoMSSes blocked and retired.
            engine.block([0])
            engine.block([1])
            # A previous test mined core {3} when only binding 0 was
            # retired and archived it under context {0}.
            archived = frozenset({3})
            engine._stale_post_cores[(engine.signature, frozenset({0}))] = [archived]
            # In this layer the core still holds: assuming soft [6] conflicts.
            engine.add_hard([-6])
            assert (engine.signature, frozenset({0, 1})) not in engine._stale_post_cores
            result = engine.solve_current()
            assert result.satisfiable
            assert archived in engine.cores
            assert engine.post_subsumption_hits == 1
        finally:
            engine.pop_layer()

    def test_superset_context_is_not_reused(self):
        """Cores archived at a *larger* context than the current one are
        conditioned on retirements that have not happened yet — they must
        not be offered (only subset contexts are sound candidates)."""
        wcnf = WCNF()
        for _ in range(4):
            wcnf.new_var()
        wcnf.add_soft([1, 2])
        wcnf.add_soft([3])
        wcnf.add_soft([4])
        wcnf.signature = "feedbeef00000000"
        engine = HittingSetMaxSat()
        engine.load(wcnf)
        engine.push_layer()
        try:
            engine.block([0])  # context {0}
            engine._stale_post_cores[(engine.signature, frozenset({0, 1}))] = [
                frozenset({2})
            ]
            engine.add_hard([-4])
            engine.solve_current()
            assert engine.post_subsumption_hits == 0
        finally:
            engine.pop_layer()

    def test_archive_is_bounded(self):
        from repro.maxsat import hitting_set as module

        engine = HittingSetMaxSat()
        engine.signature = "cafe"
        engine._bindings = []
        for index in range(module.MAX_POST_KEYS + 5):
            engine._stale_post_cores[("cafe", frozenset([index]))] = [
                frozenset([index])
            ]
        engine._archive_post(frozenset([999]))
        assert len(engine._stale_post_cores) <= module.MAX_POST_KEYS
