"""Tests for the circuit builder and the bit-precise expression encoding."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.encoding import CircuitBuilder, EncodingContext, StatementGroup
from repro.lang.semantics import apply_binary, wrap
from repro.sat import Solver

WIDTH = 8


def make_builder(width: int = WIDTH) -> tuple[EncodingContext, CircuitBuilder]:
    context = EncodingContext(width)
    return context, CircuitBuilder(context)


def solve_with(context: EncodingContext) -> Solver:
    solver = Solver()
    solver.ensure_vars(context.num_vars)
    for clause in context.hard:
        solver.add_clause(clause)
    for clauses in context.groups.values():
        for clause in clauses:
            solver.add_clause(clause)
    return solver


def evaluate(builder: CircuitBuilder, context: EncodingContext, bits) -> int:
    solver = solve_with(context)
    assert solver.solve()
    return builder.decode(bits, solver.get_model())


class TestContext:
    def test_clause_routing(self):
        context = EncodingContext(4)
        context.emit([1])
        group = StatementGroup(line=7, function="main")
        with context.group(group):
            context.emit([2])
            context.emit_hard([3])
        context.emit([4])
        assert [1] in context.hard
        assert [3] in context.hard
        assert [4] in context.hard
        assert context.groups[group] == [[2]]
        assert context.num_clauses == 4

    def test_true_literal_is_hard(self):
        context = EncodingContext(4)
        group = StatementGroup(line=1)
        with context.group(group):
            lit = context.true_lit
        assert [lit] in context.hard

    def test_group_describe(self):
        group = StatementGroup(line=12, function="f", iteration=3)
        text = group.describe()
        assert "12" in text and "f()" in text and "3" in text


class TestConstants:
    def test_const_round_trip(self):
        context, builder = make_builder()
        for value in (0, 1, -1, 127, -128, 42):
            assert builder.constant_of(builder.const(value)) == value

    def test_fix_to_value_and_decode(self):
        context, builder = make_builder()
        bits = builder.fresh()
        builder.fix_to_value(bits, -37)
        assert evaluate(builder, context, bits) == -37

    def test_decode_of_constant_needs_no_model_entries(self):
        context, builder = make_builder()
        bits = builder.const(99)
        assert builder.decode(bits, {}) == 99


class TestArithmeticCircuits:
    @pytest.mark.parametrize("op", ["+", "-", "*"])
    @pytest.mark.parametrize(
        "left,right", [(3, 4), (-3, 7), (120, 9), (-128, -1), (15, -15), (0, 0)]
    )
    def test_binary_ops_match_reference(self, op, left, right):
        context, builder = make_builder()
        a = builder.fresh()
        b = builder.fresh()
        builder.fix_to_value(a, left)
        builder.fix_to_value(b, right)
        if op == "+":
            out = builder.add(a, b)
        elif op == "-":
            out = builder.sub(a, b)
        else:
            out = builder.multiply(a, b)
        assert evaluate(builder, context, out) == apply_binary(op, left, right, WIDTH)

    @pytest.mark.parametrize(
        "left,right", [(7, 2), (-7, 2), (7, -2), (-7, -2), (100, 9), (5, 0), (0, 3)]
    )
    def test_division_and_modulo(self, left, right):
        context, builder = make_builder()
        a = builder.fresh()
        b = builder.fresh()
        builder.fix_to_value(a, left)
        builder.fix_to_value(b, right)
        quotient, remainder = builder.divmod(a, b)
        assert evaluate(builder, context, quotient) == apply_binary("/", left, right, WIDTH)
        assert evaluate(builder, context, remainder) == apply_binary("%", left, right, WIDTH)

    @pytest.mark.parametrize(
        "left,right",
        [(3, 4), (4, 3), (-3, 4), (4, -3), (-5, -5), (127, -128), (-128, 127), (0, 0)],
    )
    def test_signed_comparisons(self, left, right):
        context, builder = make_builder()
        a = builder.fresh()
        b = builder.fresh()
        builder.fix_to_value(a, left)
        builder.fix_to_value(b, right)
        less = builder.bool_to_bits(builder.signed_less(a, b))
        less_equal = builder.bool_to_bits(builder.signed_less_equal(a, b))
        equal = builder.bool_to_bits(builder.equals(a, b))
        assert evaluate(builder, context, less) == int(left < right)
        assert evaluate(builder, context, less_equal) == int(left <= right)
        assert evaluate(builder, context, equal) == int(left == right)

    def test_mux(self):
        context, builder = make_builder()
        selector = context.new_var()
        a = builder.const(11)
        b = builder.const(22)
        out = builder.mux(selector, a, b)
        context.emit([selector])
        assert evaluate(builder, context, out) == 11

    def test_negate_and_absolute(self):
        context, builder = make_builder()
        value = builder.fresh()
        builder.fix_to_value(value, -77)
        assert evaluate(builder, context, builder.negate(value)) == 77
        assert evaluate(builder, context, builder.absolute(value)) == 77

    def test_constant_folding_emits_no_clauses(self):
        context, builder = make_builder()
        before = context.num_clauses
        out = builder.add(builder.const(3), builder.const(4))
        assert builder.constant_of(out) == 7
        # Only the true-literal unit clause may have been added.
        assert context.num_clauses <= before + 1


@settings(max_examples=60, deadline=None)
@given(
    left=st.integers(min_value=-128, max_value=127),
    right=st.integers(min_value=-128, max_value=127),
    op=st.sampled_from(["+", "-", "*", "<", "<=", ">", ">=", "==", "!="]),
)
def test_circuits_agree_with_semantics(left, right, op):
    context, builder = make_builder()
    a = builder.fresh()
    b = builder.fresh()
    builder.fix_to_value(a, left)
    builder.fix_to_value(b, right)
    if op == "+":
        out = builder.add(a, b)
    elif op == "-":
        out = builder.sub(a, b)
    elif op == "*":
        out = builder.multiply(a, b)
    elif op == "<":
        out = builder.bool_to_bits(builder.signed_less(a, b))
    elif op == "<=":
        out = builder.bool_to_bits(builder.signed_less_equal(a, b))
    elif op == ">":
        out = builder.bool_to_bits(builder.signed_less(b, a))
    elif op == ">=":
        out = builder.bool_to_bits(builder.signed_less_equal(b, a))
    elif op == "==":
        out = builder.bool_to_bits(builder.equals(a, b))
    else:
        out = builder.bool_to_bits(-builder.equals(a, b))
    expected = apply_binary(op, wrap(left, WIDTH), wrap(right, WIDTH), WIDTH)
    assert evaluate(builder, context, out) == expected
