"""Differential tests: the C emission core versus the pure-Python arena.

Both backends fill the identical flat :class:`~repro.encoding.arena.GateArena`
buffers with the identical fold rules and hash mixing, so whole compiles must
be bit-identical between them: same CNF, same gate signature, same journal,
same pickled artifact bytes, same localization reports.  These tests drive
matched compile pairs through every Table 3 program, a hypothesis gate-op
matrix over the five scalar gates, and seeded bit-vector kernel chains
(add / multiply / equals / unsigned_less / mux), and require exact equality.

The Python arm of each pair is produced in-process by pinning
``_ccore.encode_library`` / ``_ccore.materialize_function`` to ``None`` —
exactly the state a ``REPRO_ENCODE=python`` process runs in — so a single
process compares the two emitters over the same interned objects.  Separate
subprocess tests cover the environment knob itself (explicit pin, inheritance
from ``REPRO_PROPAGATION``, and cross-process artifact identity under
``PYTHONHASHSEED=0``).

When the C core cannot be built (no compiler), the differential pairs are
skipped but the arena unit tests and the pure-Python feature checks still
run, which is the fallback guarantee.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.bmc import BoundedModelChecker, dumps_artifact
from repro.encoding import CircuitBuilder, encode_backend
from repro.encoding.arena import (
    GateArena,
    HDR_GUSED,
    HDR_HITS,
    HDR_JLEN,
    HDR_NCLAUSES,
    HDR_NUM_VARS,
)
from repro.encoding.context import ArenaEncodingContext
from repro.sat import _ccore
from repro.siemens import tcas_faulty_program
from repro.siemens.programs import LARGE_BENCHMARKS

C_AVAILABLE = encode_backend() == "c"

needs_c = pytest.mark.skipif(
    not C_AVAILABLE, reason="C emission core unavailable on this machine"
)

#: The two big Table 3 rows take ~30s on the pure-Python arm; they run under
#: ``--runslow`` while the two quick rows keep the cross-program differential
#: in the tier-1 loop.
TABLE3_CASES = [
    pytest.param(case, id=case.name, marks=[pytest.mark.slow])
    if case.name in ("tot_info", "print_tokens")
    else pytest.param(case, id=case.name)
    for case in LARGE_BENCHMARKS
]


@contextlib.contextmanager
def python_pinned():
    """Run the body exactly as a ``REPRO_ENCODE=python`` process would."""
    saved = (_ccore.encode_library, _ccore.materialize_function)
    _ccore.encode_library = lambda: None
    _ccore.materialize_function = lambda: None
    try:
        yield
    finally:
        _ccore.encode_library, _ccore.materialize_function = saved


def compile_cold(program):
    return BoundedModelChecker(program, group_statements=True).compile_program()


def _subprocess_env(**overrides: str) -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_ENCODE", None)
    env.pop("REPRO_PROPAGATION", None)
    env.update(overrides)
    return env


# --------------------------------------------------------------- differential


@needs_c
class TestDifferential:
    @pytest.mark.parametrize("case", TABLE3_CASES)
    def test_table3_artifacts_bit_identical(self, case):
        program = case.faulty_program()
        c_artifact = compile_cold(program)
        assert c_artifact.encode_profile()["encode_backend"] == "c"
        with python_pinned():
            py_artifact = compile_cold(program)
        assert py_artifact.encode_profile()["encode_backend"] == "python"
        assert c_artifact.signature == py_artifact.signature
        assert c_artifact.num_vars == py_artifact.num_vars
        assert c_artifact.num_clauses == py_artifact.num_clauses
        assert dumps_artifact(c_artifact) == dumps_artifact(py_artifact)

    def test_tcas_artifact_bit_identical(self):
        program = tcas_faulty_program("v1")
        c_artifact = compile_cold(program)
        with python_pinned():
            py_artifact = compile_cold(program)
        for field in dataclasses.fields(c_artifact):
            assert getattr(c_artifact, field.name) == getattr(
                py_artifact, field.name
            ), field.name
        assert dumps_artifact(c_artifact) == dumps_artifact(py_artifact)

    def test_localization_reports_identical(self):
        from repro.core import LocalizationSession, Specification
        from repro.serve import canonical_report_bytes
        from repro.siemens import classify_tcas_tests

        failing, _ = classify_tcas_tests("v2", count=200)
        assert failing
        vector, expected = failing[0]
        spec = Specification.return_value(expected)
        reports = {}
        for backend in ("c", "python"):
            pin = python_pinned() if backend == "python" else contextlib.nullcontext()
            with pin:
                compiled = compile_cold(tcas_faulty_program("v2"))
            with LocalizationSession.from_compiled(compiled) as session:
                reports[backend] = canonical_report_bytes(
                    session.localize(vector.as_list(), spec)
                )
        assert reports["c"] == reports["python"]


# --------------------------------------------------------- gate-op matrices


def _context_fingerprint(context: ArenaEncodingContext) -> tuple:
    context.finalize()
    return (
        context.gate_signature,
        context.num_vars,
        context.num_clauses,
        context.gates_emitted,
        context.gate_hits,
        context.hard,
        context.journal,
    )


def _run_scalar_ops(ops: list[tuple[int, int, int, int, int]]) -> tuple:
    """Replay an op tape against a fresh arena context; fingerprint it.

    Each record is ``(op, i, j, k, signs)``: pick operands from the growing
    literal pool by index (modulo its size), negate per the sign bits, apply
    the gate, and append the result to the pool.  The same tape therefore
    drives the exact same call sequence on either backend.
    """
    context = ArenaEncodingContext(width=8)
    context.begin_journal()
    builder = CircuitBuilder(context)
    pool = [context.new_var() for _ in range(4)]
    pool.append(builder.true)  # the constant feeds the fold rules
    for op, i, j, k, signs in ops:
        a = pool[i % len(pool)] * (1 if signs & 1 else -1)
        b = pool[j % len(pool)] * (1 if signs & 2 else -1)
        c = pool[k % len(pool)] * (1 if signs & 4 else -1)
        if op == 0:
            result = builder.bit_and(a, b)
        elif op == 1:
            result = builder.bit_or(a, b)
        elif op == 2:
            result = builder.bit_xor(a, b)
        elif op == 3:
            result = builder.bit_ite(a, b, c)
        elif op == 4:
            result = builder.bit_xor3(a, b, c)
        elif op == 5:
            result = builder.bit_majority(a, b, c)
        else:
            result = builder.bit_equal(a, b)
        pool.append(result)
    return _context_fingerprint(context)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=6),
            st.integers(min_value=0, max_value=63),
            st.integers(min_value=0, max_value=63),
            st.integers(min_value=0, max_value=63),
            st.integers(min_value=0, max_value=7),
        ),
        max_size=40,
    )
)
def test_hypothesis_gate_matrix(ops):
    if not C_AVAILABLE:
        pytest.skip("C emission core unavailable")
    with_c = _run_scalar_ops(ops)
    with python_pinned():
        pure = _run_scalar_ops(ops)
    assert with_c == pure


def _run_vector_ops(seed: int) -> tuple:
    """A seeded chain of the hot bit-vector kernels, fingerprinted."""
    rng = random.Random(seed)
    context = ArenaEncodingContext(width=8)
    context.begin_journal()
    builder = CircuitBuilder(context)
    vectors = [builder.fresh() for _ in range(3)]
    vectors.append(builder.const(rng.randint(-128, 127)))
    bits = [builder.true]
    for _ in range(12):
        a = vectors[rng.randrange(len(vectors))]
        b = vectors[rng.randrange(len(vectors))]
        choice = rng.randrange(5)
        if choice == 0:
            vectors.append(builder.add(a, b))
        elif choice == 1:
            vectors.append(builder.multiply(a, b))
        elif choice == 2:
            bits.append(builder.equals(a, b))
        elif choice == 3:
            bits.append(builder.unsigned_less(a, b))
        else:
            vectors.append(builder.mux(bits[rng.randrange(len(bits))], a, b))
    return _context_fingerprint(context)


@needs_c
@pytest.mark.parametrize("seed", range(10))
def test_vector_kernels_identical(seed):
    with_c = _run_vector_ops(seed)
    with python_pinned():
        pure = _run_vector_ops(seed)
    assert with_c == pure


# ------------------------------------------------------------- feature check


class TestFeatureCheck:
    def test_env_forces_python_fallback(self):
        """REPRO_ENCODE=python pins the arena fallback in a fresh process."""
        script = (
            "from repro.encoding import encode_backend\n"
            "from repro.bmc import BoundedModelChecker\n"
            "from repro.siemens import tcas_faulty_program\n"
            "assert encode_backend() == 'python'\n"
            "compiled = BoundedModelChecker(\n"
            "    tcas_faulty_program('v1'), group_statements=True\n"
            ").compile_program()\n"
            "assert compiled.encode_profile()['encode_backend'] == 'python'\n"
            "print('ok', compiled.signature)\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            env=_subprocess_env(REPRO_ENCODE="python"),
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
        assert "ok" in result.stdout

    def test_inherits_propagation_pin(self):
        """Unset REPRO_ENCODE inherits a REPRO_PROPAGATION=python pin."""
        script = (
            "from repro.encoding import encode_backend\n"
            "from repro.sat import propagation_backend\n"
            "assert propagation_backend() == 'python'\n"
            "assert encode_backend() == 'python'\n"
            "print('ok')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            env=_subprocess_env(REPRO_PROPAGATION="python"),
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
        assert "ok" in result.stdout

    @needs_c
    def test_env_requires_c_core(self):
        script = (
            "from repro.encoding import encode_backend\n"
            "assert encode_backend() == 'c'\n"
            "print('ok')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            env=_subprocess_env(REPRO_ENCODE="c"),
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr

    @needs_c
    def test_explicit_pin_overrides_inheritance(self):
        """REPRO_ENCODE=c keeps the emission core under a python solver pin."""
        script = (
            "from repro.encoding import encode_backend\n"
            "from repro.sat import propagation_backend\n"
            "assert propagation_backend() == 'python'\n"
            "assert encode_backend() == 'c'\n"
            "print('ok')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            env=_subprocess_env(REPRO_PROPAGATION="python", REPRO_ENCODE="c"),
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr

    @needs_c
    def test_cross_process_artifacts_identical(self):
        """Pinned subprocesses agree byte-for-byte under PYTHONHASHSEED=0."""
        script = (
            "import hashlib\n"
            "from repro.bmc import BoundedModelChecker, dumps_artifact\n"
            "from repro.siemens import tcas_faulty_program\n"
            "compiled = BoundedModelChecker(\n"
            "    tcas_faulty_program('v1'), group_statements=True\n"
            ").compile_program()\n"
            "print(hashlib.sha256(dumps_artifact(compiled)).hexdigest())\n"
        )
        digests = {}
        for backend in ("c", "python"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                env=_subprocess_env(REPRO_ENCODE=backend, PYTHONHASHSEED="0"),
                capture_output=True,
                text=True,
            )
            assert result.returncode == 0, result.stderr
            digests[backend] = result.stdout.strip()
        assert digests["c"] == digests["python"]


# -------------------------------------------------------- arena housekeeping


class TestArenaHousekeeping:
    """Flat-buffer growth and rehashing, on the always-on Python routines."""

    def test_clause_buffer_growth_preserves_contents(self):
        arena = GateArena(journal=True)
        rng = random.Random(11)
        expected = []
        for index in range(6000):  # far past the 1024-clause / 4096-lit seeds
            clause = [
                rng.choice([-1, 1]) * rng.randint(1, 400)
                for _ in range(rng.randint(1, 7))
            ]
            expected.append(clause)
            arena.emit(clause, -1 if index % 3 else index % 5)
        assert arena.hdr[HDR_NCLAUSES] == len(expected)
        hard, groups, journal, _ = arena.materialize(list(range(5)))
        # The journal restores exact emission order; hard/groups partition
        # the same clauses (as shared list objects) by owning group.
        restored = [event[2] for event in journal if event[0] == "c"]
        assert restored == expected
        store = hard + [c for gid in range(5) for c in groups[gid]]
        assert sorted(map(tuple, store)) == sorted(map(tuple, expected))
        shared = {id(clause) for clause in store}
        assert all(id(clause) in shared for clause in restored)

    def test_gate_table_rehash_preserves_lookups(self):
        arena = GateArena()
        gates = [(1 + (i % 5), i * 7 + 1, i * 13 + 2) for i in range(3000)]
        for out, (op, k1, k2) in enumerate(gates, start=1):
            assert arena.gate_lookup(op, k1, k2) == 0
            arena.gate_insert(op, k1, k2, out, [[out]])
        assert arena.hdr[HDR_GUSED] == len(gates)  # > the 2048-slot seed
        hits_before = arena.hdr[HDR_HITS]
        for out, (op, k1, k2) in enumerate(gates, start=1):
            assert arena.gate_lookup(op, k1, k2) == out
        assert arena.hdr[HDR_HITS] == hits_before + len(gates)

    @needs_c
    def test_c_rehash_hook_matches_python(self):
        """The C rehash lands every gate where the Python loop would."""
        from repro.encoding.cbind import CEncoder

        library = _ccore.encode_library()
        plain = GateArena()
        hooked = GateArena()
        CEncoder(hooked, library)  # installs hooked.rehash_hook
        assert hooked.rehash_hook is not None
        for i in range(3000):
            op, k1, k2 = 1 + (i % 5), i * 11 + 3, i * 17 + 4
            plain.gate_insert(op, k1, k2, i + 1, [[i + 1]])
            hooked.gate_insert(op, k1, k2, i + 1, [[i + 1]])
        assert plain.hdr[HDR_GUSED] == hooked.hdr[HDR_GUSED]
        assert plain.gtab == hooked.gtab

    def test_journaling_off_is_structurally_silent(self):
        """With journaling off the stream stays empty — no deferred work."""
        arena = GateArena()  # journal=False
        for _ in range(50):
            arena.new_var()
        arena.emit([1, -2], -1)
        arena.record_event(("stmt", 1), 5, (1, 2))
        arena.record_group(0)
        assert arena.hdr[HDR_JLEN] == 0
        assert len(arena.js) == 0
        assert arena.raw == []
        _, _, journal, _ = arena.materialize([])
        assert journal is None
        assert arena.hdr[HDR_NUM_VARS] == 50

    def test_context_record_skips_event_construction_when_off(self):
        """`record` with journaling off never touches the side list."""
        context = ArenaEncodingContext(width=8)
        assert not context.journaling
        context.record(("stmt", "line", 1, 2))
        assert context.arena.raw == []
        assert context.arena.hdr[HDR_JLEN] == 0
