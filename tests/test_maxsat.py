"""Unit and property-based tests for the partial weighted MaxSAT engines."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.maxsat import (
    HittingSetMaxSat,
    LinearSearchMaxSat,
    Msu3MaxSat,
    WCNF,
    enumerate_mcses,
    make_engine,
    solve_maxsat,
)
from repro.maxsat.engine import clause_satisfied, evaluate_clause
from repro.maxsat.hitting_set import minimum_cost_hitting_set

ENGINES = ["hitting-set", "msu3", "linear"]


def brute_force_optimum(wcnf: WCNF) -> int | None:
    """Reference optimum cost by enumerating all assignments (None = hard UNSAT)."""
    num_vars = wcnf.num_vars
    best: int | None = None
    for bits in itertools.product([False, True], repeat=num_vars):
        model = {var: bits[var - 1] for var in range(1, num_vars + 1)}
        if not all(clause_satisfied(clause, model) for clause in wcnf.hard):
            continue
        cost = sum(
            soft.weight for soft in wcnf.soft if not clause_satisfied(soft.lits, model)
        )
        if best is None or cost < best:
            best = cost
    return best


def simple_instance() -> WCNF:
    """x1 and x2 cannot both hold (hard); we would like both (soft)."""
    wcnf = WCNF()
    wcnf.add_hard([-1, -2])
    wcnf.add_soft([1], label="want-x1")
    wcnf.add_soft([2], label="want-x2")
    return wcnf


class TestWcnf:
    def test_counts_and_weights(self):
        wcnf = simple_instance()
        assert wcnf.num_vars == 2
        assert wcnf.total_soft_weight == 2
        assert not wcnf.is_weighted()

    def test_weighted_flag(self):
        wcnf = WCNF()
        wcnf.add_soft([1], weight=1)
        wcnf.add_soft([2], weight=5)
        assert wcnf.is_weighted()

    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError):
            WCNF().add_soft([1], weight=0)

    def test_soft_group_construction(self):
        wcnf = WCNF()
        selector = wcnf.add_soft_group([[1, 2], [-1, 3]], label="stmt-4")
        assert selector == wcnf.num_vars
        # Each group clause became a hard clause guarded by the selector.
        assert [1, 2, -selector] in wcnf.hard
        assert [-1, 3, -selector] in wcnf.hard
        assert wcnf.soft[0].lits == (selector,)
        assert wcnf.soft[0].label == "stmt-4"

    def test_copy_is_independent(self):
        wcnf = simple_instance()
        duplicate = wcnf.copy()
        duplicate.add_hard([1])
        assert len(wcnf.hard) == 1
        assert len(duplicate.hard) == 2


class TestEngines:
    @pytest.mark.parametrize("strategy", ENGINES)
    def test_all_soft_satisfiable(self, strategy):
        wcnf = WCNF()
        wcnf.add_hard([1, 2])
        wcnf.add_soft([1])
        wcnf.add_soft([2, 3])
        result = solve_maxsat(wcnf, strategy=strategy)
        assert result.satisfiable
        assert result.cost == 0
        assert result.falsified == []

    @pytest.mark.parametrize("strategy", ENGINES)
    def test_one_clause_must_fall(self, strategy):
        result = solve_maxsat(simple_instance(), strategy=strategy)
        assert result.satisfiable
        assert result.cost == 1
        assert len(result.falsified) == 1
        assert result.falsified_labels[0] in {"want-x1", "want-x2"}

    @pytest.mark.parametrize("strategy", ENGINES)
    def test_hard_clauses_unsat(self, strategy):
        wcnf = WCNF()
        wcnf.add_hard([1])
        wcnf.add_hard([-1])
        wcnf.add_soft([2])
        result = solve_maxsat(wcnf, strategy=strategy)
        assert not result.satisfiable

    @pytest.mark.parametrize("strategy", ENGINES)
    def test_non_unit_soft_clauses(self, strategy):
        wcnf = WCNF()
        wcnf.add_hard([-1, -2])
        wcnf.add_hard([-1, -3])
        wcnf.add_soft([2, 3])
        wcnf.add_soft([1])
        result = solve_maxsat(wcnf, strategy=strategy)
        assert result.satisfiable
        assert result.cost == 1

    @pytest.mark.parametrize("strategy", ENGINES)
    def test_cost_matches_brute_force_on_fixed_instances(self, strategy):
        instances = []
        first = WCNF()
        first.add_hard([1, 2, 3])
        first.add_hard([-1, -2])
        first.add_soft([1])
        first.add_soft([2])
        first.add_soft([3])
        first.add_soft([-3, 1])
        instances.append(first)
        second = WCNF()
        second.add_hard([-1])
        second.add_soft([1])
        second.add_soft([1, 2])
        second.add_soft([-2])
        instances.append(second)
        for wcnf in instances:
            result = solve_maxsat(wcnf, strategy=strategy)
            assert result.satisfiable
            assert result.cost == brute_force_optimum(wcnf)

    def test_weighted_prefers_cheap_violation(self):
        wcnf = WCNF()
        wcnf.add_hard([-1, -2])
        wcnf.add_soft([1], weight=10, label="expensive")
        wcnf.add_soft([2], weight=1, label="cheap")
        result = solve_maxsat(wcnf)
        assert result.cost == 1
        assert result.falsified_labels == ["cheap"]

    def test_weighted_rejected_by_unweighted_engines(self):
        wcnf = WCNF()
        wcnf.add_soft([1], weight=2)
        wcnf.add_soft([2], weight=1)
        with pytest.raises(ValueError):
            Msu3MaxSat().solve(wcnf)
        with pytest.raises(ValueError):
            LinearSearchMaxSat().solve(wcnf)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            make_engine("simulated-annealing")

    def test_auto_strategy_picks_engine_from_instance(self, monkeypatch):
        import repro.maxsat.facade as facade

        chosen: list[str] = []
        real_make_engine = facade.make_engine

        def spy(strategy: str = "hitting-set"):
            chosen.append(strategy)
            return real_make_engine(strategy)

        monkeypatch.setattr(facade, "make_engine", spy)

        unweighted = WCNF()
        x = unweighted.new_var()
        unweighted.add_soft([x])
        unweighted.add_soft([-x])
        result = facade.solve_maxsat(unweighted, strategy="auto")
        assert result.satisfiable and result.cost == 1
        assert chosen[-1] == "msu3"

        weighted = WCNF()
        y = weighted.new_var()
        weighted.add_soft([y], weight=1)
        weighted.add_soft([-y], weight=5)
        result = facade.solve_maxsat(weighted, strategy="auto")
        assert result.satisfiable and result.cost == 1
        assert chosen[-1] == "hitting-set"

    def test_empty_instance(self):
        result = solve_maxsat(WCNF())
        assert result.satisfiable
        assert result.cost == 0

    def test_selector_group_instance(self):
        # Two statement groups that contradict each other: exactly one must
        # be disabled, mirroring the BugAssist encoding.
        wcnf = WCNF()
        x = 1
        wcnf._num_vars = 1
        group_a = wcnf.add_soft_group([[x]], label="line-1")
        group_b = wcnf.add_soft_group([[-x]], label="line-2")
        result = solve_maxsat(wcnf)
        assert result.cost == 1
        assert set(result.falsified_labels) <= {"line-1", "line-2"}
        assert {group_a, group_b} == {wcnf.soft[0].lits[0], wcnf.soft[1].lits[0]}


class TestDuplicateSoftClauses:
    """Duplicate soft clauses must share one assumption (one indicator)."""

    def test_duplicates_share_one_binding(self):
        wcnf = WCNF()
        wcnf.add_soft([1])
        wcnf.add_soft([1])
        wcnf.add_soft([1, 2])
        engine = HittingSetMaxSat()
        engine.load(wcnf)
        assert len(engine._bindings) == 2
        assert engine._bindings[0].indices == [0, 1]
        assert engine._bindings[0].weight == 2
        assert engine._bindings[0].assumption == 1

    @pytest.mark.parametrize("strategy", ENGINES)
    def test_duplicate_unit_softs_fall_together(self, strategy):
        wcnf = WCNF()
        wcnf.add_hard([-1])
        wcnf.add_soft([1], label="first")
        wcnf.add_soft([1], label="second")
        result = solve_maxsat(wcnf, strategy=strategy)
        assert result.satisfiable
        assert result.cost == 2
        assert result.falsified == [0, 1]
        assert set(result.falsified_labels) == {"first", "second"}

    @pytest.mark.parametrize("strategy", ENGINES)
    def test_duplicates_count_fully_towards_the_optimum(self, strategy):
        # Falsifying the duplicated clause costs 2, so the optimum falsifies
        # the single clause [2] instead; an engine whose cardinality bound
        # counted the merged binding once would get this wrong.
        wcnf = WCNF()
        wcnf.add_hard([-1, -2])
        wcnf.add_soft([1])
        wcnf.add_soft([1])
        wcnf.add_soft([2])
        result = solve_maxsat(wcnf, strategy=strategy)
        assert result.cost == 1 == brute_force_optimum(wcnf)
        assert result.falsified == [2]


class TestModelCompletion:
    def test_evaluate_clause_reports_dont_care_literal(self):
        assert evaluate_clause([2], {1: True}) == 2
        assert evaluate_clause([-2], {1: True}) == -2
        assert evaluate_clause([2], {2: False}) is False
        assert evaluate_clause([2, 1], {2: False, 1: True}) is True

    def test_dont_care_soft_variable_not_counted(self, monkeypatch):
        # Variable 3 occurs only in the soft clause.  Simulate a solver that
        # left it unassigned: the cost must not be over-counted — the model
        # is completed in the clause's favour instead.
        wcnf = WCNF()
        wcnf.add_hard([1])
        wcnf.add_soft([3], label="dont-care")
        engine = HittingSetMaxSat()
        engine.load(wcnf)
        assert engine.solve_current().cost == 0
        monkeypatch.setattr(
            engine._solver, "get_model", lambda complete=False: {1: True}
        )
        result = engine._result_from_model()
        assert result.cost == 0
        assert result.falsified == []
        assert result.model[3] is True


class TestIncrementalEngine:
    @pytest.mark.parametrize("strategy", ENGINES)
    def test_block_retires_softs_on_the_live_solver(self, strategy):
        wcnf = WCNF()
        wcnf.add_hard([-1, -2])
        wcnf.add_hard([-2, -3])
        for var in (1, 2, 3):
            wcnf.add_soft([var], label=f"x{var}")
        engine = make_engine(strategy)
        engine.load(wcnf)
        first = engine.solve_current()
        assert first.cost == 1
        assert first.falsified == [1]  # x2 conflicts with both neighbours
        engine.block(first.falsified)
        second = engine.solve_current()
        # x2 is now hard-on, so both x1 and x3 must fall.
        assert second.cost == 2
        assert second.falsified == [0, 2]
        engine.block(second.falsified)
        # No soft clauses remain and the blocking clauses contradict the
        # hard clauses: no further correction set exists.
        third = engine.solve_current()
        assert not third.satisfiable

    @pytest.mark.parametrize("strategy", ENGINES)
    def test_incremental_matches_one_shot_rebuild(self, strategy):
        wcnf = WCNF()
        wcnf.add_hard([-1, -2])
        wcnf.add_hard([-3, -4])
        for var in (1, 2, 3, 4):
            wcnf.add_soft([var])
        engine = make_engine(strategy)
        engine.load(wcnf)
        blocked_sets: list[set[int]] = []
        for _ in range(4):
            # Mirror the engine's blocked state on a freshly built WCNF
            # (beta clauses hardened, blocked softs removed) and compare.
            rebuilt = WCNF()
            rebuilt._num_vars = wcnf.num_vars
            for clause in wcnf.hard:
                rebuilt.add_hard(clause)
            retired: set[int] = set().union(*blocked_sets) if blocked_sets else set()
            for blocked in blocked_sets:
                rebuilt.add_hard(
                    [lit for index in sorted(blocked) for lit in wcnf.soft[index].lits]
                )
            for index, soft in enumerate(wcnf.soft):
                if index not in retired:
                    rebuilt.add_soft(
                        list(soft.lits), weight=soft.weight, label=soft.label
                    )
            one_shot = solve_maxsat(rebuilt, strategy=strategy)
            incremental = engine.solve_current()
            assert incremental.satisfiable == one_shot.satisfiable
            if not incremental.satisfiable or not incremental.falsified:
                break
            assert incremental.cost == one_shot.cost
            blocked_sets.append(set(incremental.falsified))
            engine.block(incremental.falsified)

    def test_sat_calls_accumulate_across_solves(self):
        engine = HittingSetMaxSat()
        engine.load(simple_instance())
        first = engine.solve_current()
        engine.block(first.falsified)
        second = engine.solve_current()
        assert second.sat_calls > first.sat_calls
        assert engine.sat_calls == second.sat_calls


class TestHittingSet:
    def test_empty_cores(self):
        assert minimum_cost_hitting_set([], [1, 1, 1]) == set()

    def test_single_core_picks_cheapest(self):
        cores = [frozenset({0, 1, 2})]
        assert minimum_cost_hitting_set(cores, [5, 1, 3]) == {1}

    def test_disjoint_cores(self):
        cores = [frozenset({0, 1}), frozenset({2, 3})]
        result = minimum_cost_hitting_set(cores, [1, 2, 2, 1])
        assert result == {0, 3}

    def test_overlapping_cores_prefer_shared_element(self):
        cores = [frozenset({0, 1}), frozenset({1, 2})]
        result = minimum_cost_hitting_set(cores, [1, 1, 1])
        assert result == {1}

    def test_weighted_tradeoff(self):
        # Hitting both cores through the shared element costs 10; hitting
        # them separately costs 2.
        cores = [frozenset({0, 1}), frozenset({0, 2})]
        result = minimum_cost_hitting_set(cores, [10, 1, 1])
        assert result == {1, 2}


class TestMcsEnumeration:
    def test_enumerates_both_singletons(self):
        results = list(enumerate_mcses(simple_instance()))
        found = {frozenset(result.falsified) for result in results}
        assert frozenset({0}) in found
        assert frozenset({1}) in found

    def test_respects_max_count(self):
        results = list(enumerate_mcses(simple_instance(), max_count=1))
        assert len(results) == 1

    def test_stops_when_everything_satisfiable(self):
        wcnf = WCNF()
        wcnf.add_hard([1])
        wcnf.add_soft([1])
        assert list(enumerate_mcses(wcnf)) == []

    def test_costs_non_decreasing(self):
        wcnf = WCNF()
        wcnf.add_hard([-1, -2])
        wcnf.add_hard([-3, -4])
        for var in (1, 2, 3, 4):
            wcnf.add_soft([var])
        costs = [result.cost for result in enumerate_mcses(wcnf, max_count=6)]
        assert costs == sorted(costs)


@settings(max_examples=40, deadline=None)
@given(
    hard=st.lists(
        st.lists(
            st.integers(min_value=-4, max_value=4).filter(lambda x: x != 0),
            min_size=1,
            max_size=3,
        ),
        max_size=6,
    ),
    soft=st.lists(
        st.lists(
            st.integers(min_value=-4, max_value=4).filter(lambda x: x != 0),
            min_size=1,
            max_size=2,
        ),
        min_size=1,
        max_size=6,
    ),
)
def test_engines_agree_with_brute_force(hard, soft):
    wcnf = WCNF()
    for clause in hard:
        wcnf.add_hard(clause)
    for clause in soft:
        wcnf.add_soft(clause)
    expected = brute_force_optimum(wcnf)
    for strategy in ENGINES:
        result = solve_maxsat(wcnf, strategy=strategy)
        if expected is None:
            assert not result.satisfiable
        else:
            assert result.satisfiable
            assert result.cost == expected


@settings(max_examples=30, deadline=None)
@given(
    weights=st.lists(st.integers(min_value=1, max_value=9), min_size=2, max_size=5),
    data=st.data(),
)
def test_weighted_hitting_set_matches_brute_force(weights, data):
    num_vars = len(weights)
    wcnf = WCNF()
    # Pairwise hard conflicts between some soft unit literals.
    for first in range(1, num_vars + 1):
        for second in range(first + 1, num_vars + 1):
            if data.draw(st.booleans()):
                wcnf.add_hard([-first, -second])
    for var, weight in enumerate(weights, start=1):
        wcnf.add_soft([var], weight=weight)
    expected = brute_force_optimum(wcnf)
    result = HittingSetMaxSat().solve(wcnf)
    assert result.satisfiable
    assert result.cost == expected
