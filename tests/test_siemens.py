"""Tests for the Siemens-style benchmark suite and the trace reductions."""

from __future__ import annotations

import pytest

from repro.core import BugAssistLocalizer, OffByOneRepairer, Specification
from repro.concolic import ConcolicTracer
from repro.lang import Interpreter
from repro.reduction import (
    concretizable_functions,
    ddmin,
    minimize_failing_input,
    slice_relevant_lines,
    sliced_tracer_settings,
)
from repro.siemens import (
    TCAS_FAULTS,
    classify_tcas_tests,
    generate_tcas_tests,
    golden_outputs,
    run_tcas_version,
    tcas_fault,
    tcas_faulty_program,
    tcas_program,
    tcas_versions,
)
from repro.siemens.faults import ErrorType
from repro.siemens.programs import LARGE_BENCHMARKS, PRINT_TOKENS, SCHEDULE, TOT_INFO
from repro.siemens.strncat_example import (
    FAULT_LINE,
    LIBRARY_FUNCTIONS,
    fixed_strncat_program,
    strncat_program,
)
from repro.siemens.suite import TCAS_HARNESS_LINES, run_large_benchmark

POOL = 300  # small test pool for unit tests; benchmarks use larger pools


class TestTcasProgram:
    def test_reference_program_parses_and_runs(self):
        program = tcas_program()
        assert program.lines_of_code() == 103
        result = Interpreter(program).run([601, 1, 1, 2000, 500, 3000, 0, 399, 400, 0, 1, 0])
        assert result.return_value in (0, 1, 2)

    def test_all_versions_parse(self):
        for version in tcas_versions():
            program = tcas_faulty_program(version)
            assert program.functions["main"].params  # parsed with 12 inputs

    def test_catalogue_matches_table1_shape(self):
        assert len(TCAS_FAULTS) == 39  # Table 1 lists v1-v41 minus v33, v38
        multi_error = {fault.name: fault.errors for fault in TCAS_FAULTS if fault.errors > 1}
        assert set(multi_error) == {"v10", "v11", "v15", "v31", "v32", "v40"}
        assert multi_error["v15"] == 3

    def test_error_types_cover_table2(self):
        used = {fault.error_type for fault in TCAS_FAULTS}
        assert used == set(ErrorType)
        for error_type in ErrorType:
            assert error_type.explanation()

    def test_every_version_has_failing_tests(self):
        for version in tcas_versions():
            failing, passing = classify_tcas_tests(version, count=600)
            assert failing, f"{version} has no failing tests in the pool"
            assert passing

    def test_golden_outputs_deterministic(self):
        assert golden_outputs(100) == golden_outputs(100)
        assert len(generate_tcas_tests(100)) == 100

    def test_fault_lookup(self):
        fault = tcas_fault("v2")
        assert fault.error_type is ErrorType.CONST
        assert fault.fault_lines == (28,)
        with pytest.raises(KeyError):
            tcas_fault("v99")

    def test_localization_detects_v2_fault(self):
        # Figure 2: the constant fault in Inhibit_Biased_Climb (line 28 here)
        # must be among the reported locations for a failing test.
        result = run_tcas_version("v2", test_count=600, max_localized_tests=1)
        assert result.failing_tests > 0
        assert result.detected == result.runs == 1
        assert 28 in result.reported_lines
        assert 0 < result.size_reduction_percent(103) < 100
        assert all(line not in TCAS_HARNESS_LINES for line in result.reported_lines)


class TestLargeBenchmarks:
    def test_failing_tests_fail_and_reference_passes(self):
        for benchmark in LARGE_BENCHMARKS:
            assert benchmark.fails(list(benchmark.failing_test)), benchmark.name
            reference = Interpreter(benchmark.reference_program()).run(
                list(benchmark.failing_test)
            )
            assert not reference.assertion_failed

    @pytest.mark.slow
    def test_reduction_shrinks_formula(self):
        for benchmark in (TOT_INFO, PRINT_TOKENS):
            row = run_large_benchmark(benchmark, max_candidates=4)
            assert row.clauses_after < row.clauses_before
            assert row.variables_after <= row.variables_before
            assert row.fault_candidates >= 1

    def test_reduction_smoke(self):
        # Fast tier-1 variant of the Table 3 protocol: one CoMSS on the
        # concolically reduced print_tokens trace exercises the same
        # reduction + incremental localization pipeline in well under a
        # second of MaxSAT work.
        row = run_large_benchmark(PRINT_TOKENS, max_candidates=1)
        assert row.clauses_after < row.clauses_before
        assert row.variables_after <= row.variables_before
        assert row.fault_candidates >= 1
        assert row.maxsat_calls == 1
        assert row.sat_calls >= 1

    @pytest.mark.slow
    def test_schedule_delta_debugging(self):
        row = run_large_benchmark(SCHEDULE, max_candidates=4)
        assert row.reduction == "DS"
        assert row.fault_candidates >= 1

    def test_schedule_delta_debugging_smoke(self):
        row = run_large_benchmark(SCHEDULE, max_candidates=1)
        assert row.reduction == "DS"
        assert row.fault_candidates >= 1


class TestReductions:
    def test_backward_slice_keeps_assertion_relevant_lines(self):
        program = TOT_INFO.faulty_program()
        relevant = slice_relevant_lines(program)
        # The info computation feeds the return value and must stay.
        assert 70 in relevant and 71 in relevant
        settings = sliced_tracer_settings(program)
        # The scratch statistics function is irrelevant to the output.
        assert "scratch_statistics" in settings["concrete_functions"]

    def test_tot_info_slice_contents_pinned(self):
        # Regression for the slicer over-approximation: every line of
        # scratch_statistics (49-58) used to land in the slice because all
        # control statements were marked relevant, which kept the function
        # symbolic.  Pin the exact slice so coarsening is caught immediately.
        program = TOT_INFO.faulty_program()
        relevant = slice_relevant_lines(program)
        assert relevant == {
            # fill_table writes the table read by info_statistic
            5, 6, 7, 8,
            # info_statistic feeds main's return value (grand on lines 12/22
            # influences nothing and stays out)
            13, 14, 15, 16, 17, 18, 19, 20, 23, 25, 26, 27, 28, 29, 30, 31,
            33, 35, 36, 37, 38, 39, 40, 41, 42, 43, 45, 47,
            # main: info, the input assumptions, the bounds check and returns
            61, 63, 64, 65, 66, 68, 70, 71,
        }
        # scratch_statistics (49-58) and its call site (69) are irrelevant.
        assert not relevant & set(range(49, 60))
        assert 69 not in relevant and 62 not in relevant

    def test_concretizable_functions(self):
        program = PRINT_TOKENS.faulty_program()
        concretizable = concretizable_functions(program)
        assert "skip_separators" in concretizable
        assert "main" not in concretizable

    def test_ddmin_minimizes(self):
        # Failure occurs whenever both 3 and 7 are present.
        result = ddmin([1, 3, 5, 7, 9], lambda items: 3 in items and 7 in items)
        assert sorted(result) == [3, 7]

    def test_ddmin_requires_failing_input(self):
        with pytest.raises(ValueError):
            ddmin([1, 2], lambda items: False)

    def test_minimize_failing_input_keeps_length(self):
        minimized = minimize_failing_input(
            [4, 1, 9, 2], lambda values: values[2] == 9, neutral=0
        )
        assert len(minimized) == 4
        assert minimized[2] == 9
        assert minimized.count(0) >= 2

    def test_sliced_trace_still_localizes_schedule2(self):
        benchmark = LARGE_BENCHMARKS[3]
        faulty = benchmark.faulty_program()
        settings = sliced_tracer_settings(faulty)
        formula = ConcolicTracer(
            faulty,
            relevant_lines=settings["relevant_lines"],
            concrete_functions=settings["concrete_functions"],
        ).trace(list(benchmark.failing_test), benchmark.specification())
        report = BugAssistLocalizer(faulty, mode="trace").localize_trace(formula)
        assert report.lines


class TestStrncatExample:
    def test_buggy_program_overflows(self):
        result = Interpreter(strncat_program()).run([3])
        assert result.assertion_failed

    def test_fixed_program_is_safe(self):
        result = Interpreter(fixed_strncat_program()).run([3])
        assert not result.assertion_failed

    def test_localization_blames_the_call_not_the_library(self):
        program = strncat_program()
        localizer = BugAssistLocalizer(
            program, mode="program", unwind=10, hard_functions=LIBRARY_FUNCTIONS
        )
        report = localizer.localize_test([3], Specification.assertion())
        assert report.contains_line(FAULT_LINE)
        library_lines = set(range(5, 26))
        assert not set(report.lines) & library_lines

    def test_off_by_one_repair_fixes_the_call(self):
        program = strncat_program()
        localizer = BugAssistLocalizer(
            program, mode="program", unwind=10, hard_functions=LIBRARY_FUNCTIONS
        )
        repairer = OffByOneRepairer(program, localizer=localizer, validator="tests")
        regressions = []
        result = repairer.repair([3], Specification.assertion(), regression_tests=regressions)
        # The only constant on the faulty call line is the buffer length
        # argument... the call passes SIZE (a variable), so the constant
        # repair may fail; operator repair is not needed for the paper's fix.
        # What matters is that the report localizes the call.
        assert result.localization is not None
        assert result.localization.contains_line(FAULT_LINE)
