"""Differential tests: the C propagation core versus the pure-Python loop.

Both backends implement the identical algorithm over the same flat
clause-arena layout, so a full solver run must be bit-identical between
them: same SAT/UNSAT answers, same models, same assumption cores, same
conflict/decision/propagation counters.  These tests drive matched solver
pairs through the solver test matrix — random formulas, assumption
sequences, incremental clause addition, push/pop layers, budgeted probes,
and a complete MaxSAT localization — and require exact equality.

When the C core cannot be built (no compiler), the differential pairs are
skipped but the remainder of the suite — including everything else in
``tests/`` — still runs on the pure-Python fallback, which is the feature
check's guarantee.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import Solver, propagation_backend
from repro.sat.solver import SolverStats

C_AVAILABLE = propagation_backend() == "c"

needs_c = pytest.mark.skipif(
    not C_AVAILABLE, reason="C propagation core unavailable on this machine"
)


def _stats_tuple(stats: SolverStats) -> tuple:
    return (
        stats.conflicts,
        stats.decisions,
        stats.propagations,
        stats.restarts,
        stats.learnt_clauses,
        stats.deleted_clauses,
    )


def _pair() -> tuple[Solver, Solver]:
    return Solver(backend="python"), Solver(backend="c")


def _assert_same_outcome(py: Solver, cc: Solver, result_py, result_cc) -> None:
    assert result_py == result_cc
    assert _stats_tuple(py.stats) == _stats_tuple(cc.stats)
    if result_py:
        assert py.get_model() == cc.get_model()
    else:
        assert sorted(py.unsat_core()) == sorted(cc.unsat_core())


def _random_instance(seed: int, num_vars: int, num_clauses: int) -> list[list[int]]:
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, 4)
        clause = []
        for _ in range(width):
            var = rng.randint(1, num_vars)
            clause.append(var if rng.random() < 0.5 else -var)
        clauses.append(clause)
    return clauses


@needs_c
class TestDifferential:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_formulas_identical(self, seed):
        clauses = _random_instance(seed, num_vars=14, num_clauses=56)
        py, cc = _pair()
        for clause in clauses:
            py.add_clause(list(clause))
            cc.add_clause(list(clause))
        _assert_same_outcome(py, cc, py.solve(), cc.solve())

    @pytest.mark.parametrize("seed", range(12))
    def test_assumption_sequences_identical(self, seed):
        rng = random.Random(1000 + seed)
        clauses = _random_instance(2000 + seed, num_vars=12, num_clauses=44)
        py, cc = _pair()
        for clause in clauses:
            py.add_clause(list(clause))
            cc.add_clause(list(clause))
        for _ in range(6):
            assumptions = [
                rng.choice([-1, 1]) * rng.randint(1, 12) for _ in range(rng.randint(0, 4))
            ]
            _assert_same_outcome(
                py, cc, py.solve(list(assumptions)), cc.solve(list(assumptions))
            )

    @pytest.mark.parametrize("seed", range(8))
    def test_incremental_blocking_identical(self, seed):
        clauses = _random_instance(3000 + seed, num_vars=10, num_clauses=30)
        py, cc = _pair()
        for clause in clauses:
            py.add_clause(list(clause))
            cc.add_clause(list(clause))
        for _ in range(8):
            result_py, result_cc = py.solve(), cc.solve()
            _assert_same_outcome(py, cc, result_py, result_cc)
            if not result_py:
                break
            model = py.get_model()
            blocking = [(-var if value else var) for var, value in model.items()][:10]
            if not blocking:
                break
            py.add_clause(list(blocking))
            cc.add_clause(list(blocking))

    @pytest.mark.parametrize("seed", range(8))
    def test_push_pop_layers_identical(self, seed):
        rng = random.Random(4000 + seed)
        base = _random_instance(5000 + seed, num_vars=10, num_clauses=24)
        py, cc = _pair()
        for clause in base:
            py.add_clause(list(clause))
            cc.add_clause(list(clause))
        for _ in range(3):
            py.push()
            cc.push()
            for clause in _random_instance(rng.randint(0, 10_000), 10, 10):
                py.add_clause(list(clause))
                cc.add_clause(list(clause))
            _assert_same_outcome(py, cc, py.solve(), cc.solve())
            py.pop()
            cc.pop()
            _assert_same_outcome(py, cc, py.solve(), cc.solve())

    def test_budgeted_probe_identical(self):
        clauses = _random_instance(77, num_vars=16, num_clauses=70)
        py, cc = _pair()
        for clause in clauses:
            py.add_clause(list(clause))
            cc.add_clause(list(clause))
        outcome_py = py.solve_limited(max_decisions=3)
        outcome_cc = cc.solve_limited(max_decisions=3)
        assert outcome_py == outcome_cc
        assert _stats_tuple(py.stats) == _stats_tuple(cc.stats)

    def test_pigeonhole_unsat_identical(self):
        def pigeonhole(solver: Solver) -> None:
            # 4 pigeons, 3 holes: variable p*3+h+1 means pigeon p in hole h.
            for pigeon in range(4):
                solver.add_clause([pigeon * 3 + hole + 1 for hole in range(3)])
            for hole in range(3):
                for first in range(4):
                    for second in range(first + 1, 4):
                        solver.add_clause(
                            [-(first * 3 + hole + 1), -(second * 3 + hole + 1)]
                        )

        py, cc = _pair()
        pigeonhole(py)
        pigeonhole(cc)
        _assert_same_outcome(py, cc, py.solve(), cc.solve())

    def test_localization_reports_identical(self, monkeypatch):
        """A full MaxSAT localization is bit-identical across backends."""
        from repro.core.localizer import BugAssistLocalizer
        from repro.lang import parse_program
        from repro.sat import _ccore
        from repro.spec import Specification

        source = (
            "int main(int x) {\n"
            "    int a = x + 1;\n"
            "    int b = a * 2;\n"
            "    int c = b - 3;\n"
            "    return c;\n"
            "}\n"
        )
        program = parse_program(source, name="diff-check")
        reports = {}
        for backend in ("python", "c"):
            # Pin the default backend every internal Solver() picks up.
            monkeypatch.setattr(_ccore, "backend", lambda choice=backend: choice)
            localizer = BugAssistLocalizer(program, mode="trace")
            reports[backend] = localizer.localize_test(
                [5], Specification.return_value(0)
            )
        py_report, c_report = reports["python"], reports["c"]
        assert py_report.lines == c_report.lines
        assert py_report.sat_calls == c_report.sat_calls
        assert py_report.propagations == c_report.propagations
        assert [c.lines for c in py_report.candidates] == [
            c.lines for c in c_report.candidates
        ]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.lists(
            st.integers(min_value=-8, max_value=8).filter(lambda x: x != 0),
            min_size=1,
            max_size=4,
        ),
        min_size=1,
        max_size=30,
    )
)
def test_hypothesis_differential(clauses):
    if not C_AVAILABLE:
        pytest.skip("C propagation core unavailable")
    py, cc = _pair()
    for clause in clauses:
        py.add_clause(list(clause))
        cc.add_clause(list(clause))
    _assert_same_outcome(py, cc, py.solve(), cc.solve())


class TestFeatureCheck:
    def test_python_backend_always_constructible(self):
        solver = Solver(backend="python")
        solver.add_clause([1, 2])
        assert solver.solve()
        assert solver.backend == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            Solver(backend="fortran")

    def test_env_forces_python_fallback(self):
        """REPRO_PROPAGATION=python pins the fallback in a fresh process."""
        script = (
            "from repro.sat import propagation_backend, Solver\n"
            "assert propagation_backend() == 'python'\n"
            "s = Solver()\n"
            "assert s.backend == 'python'\n"
            "s.add_clause([1]); assert s.solve()\n"
            "print('ok')\n"
        )
        env = dict(os.environ)
        env["REPRO_PROPAGATION"] = "python"
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True, text=True
        )
        assert result.returncode == 0, result.stderr
        assert "ok" in result.stdout

    @needs_c
    def test_env_requires_c_core(self):
        script = (
            "from repro.sat import propagation_backend\n"
            "assert propagation_backend() == 'c'\n"
            "print('ok')\n"
        )
        env = dict(os.environ)
        env["REPRO_PROPAGATION"] = "c"
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True, text=True
        )
        assert result.returncode == 0, result.stderr


class TestArenaHousekeeping:
    """The flat-arena layout's garbage handling, on the always-on backend."""

    def test_compaction_preserves_answers(self):
        solver = Solver(backend="python")
        rng = random.Random(9)
        # Pile up layers so pops create enough garbage to force compaction.
        for _ in range(60):
            solver.push()
            for clause in _random_instance(rng.randint(0, 10_000), 30, 120):
                solver.add_clause(clause)
            solver.solve()
            solver.pop()
        # Force a compaction regardless of the trigger heuristics.
        solver._compact()
        assert solver._garbage == 0
        clauses = _random_instance(123, num_vars=12, num_clauses=40)
        reference = Solver(backend="python")
        for clause in clauses:
            solver.add_clause([lit + 0 for lit in clause])
            reference.add_clause(list(clause))
        assert solver.solve() == reference.solve()

    def test_pop_frees_layer_clauses(self):
        solver = Solver(backend="python")
        solver.add_clause([1, 2])
        solver.push()  # allocates the layer's selector (variable 3)
        # Stay clear of the selector variable so the clauses really attach
        # (a clause mentioning it would be dropped as a tautology).
        for _ in range(5):
            solver.add_clause([4, 5, 6])
        added = solver._arena_len
        assert solver.solve()
        solver.pop()
        # The popped layer's clauses are dead arena spans now (compaction
        # compares against the *logical* length, which physical slack for
        # the C kernel may exceed).
        assert solver._garbage > 0 or solver._arena_len < added
        assert solver.solve()
