"""Tests for Algorithm 1 (localization), ranking, repair and loop debugging.

The motivating example (Program 1) and the square-root example (Program 3)
from the paper are exercised end to end.
"""

from __future__ import annotations

import pytest

from repro.bmc import BoundedModelChecker
from repro.core import (
    BugAssistLocalizer,
    BugAssistPipeline,
    LocalizationSession,
    LoopIterationLocalizer,
    OffByOneRepairer,
    Specification,
    rank_locations,
)
from repro.lang import Interpreter, parse_program

# Program 1 from the paper.  Line numbers (1-based, no leading blank line):
#   1: int Array[3] = {10, 20, 30};
#   2: int testme(int index) {
#   3:     if (index != 1) {            <- potential bug 2 (paper line 1)
#   4:         index = 2;
#   5:     } else {
#   6:         index = index + 2;       <- potential bug 1 (paper line 4)
#   7:     }
#   8:     int i = index;               (paper line 5)
#   9:     assert(i >= 0 && i < 3);     (paper line 6)
#  10:     return Array[i];
#  11: }
#  12: int main(int index) { return testme(index); }
MOTIVATING = (
    "int Array[3] = {10, 20, 30};\n"
    "int testme(int index) {\n"
    "    if (index != 1) {\n"
    "        index = 2;\n"
    "    } else {\n"
    "        index = index + 2;\n"
    "    }\n"
    "    int i = index;\n"
    "    assert(i >= 0 && i < 3);\n"
    "    return Array[i];\n"
    "}\n"
    "int main(int index) { return testme(index); }\n"
)

# Program 3 from the paper: nearest integer square root with the bug that the
# result is not decremented after the loop overshoots.
#   1: int squareroot(int val) {
#   2:     int i = 1;
#   3:     int v = 0;
#   4:     int res = 0;
#   5:     while (v < val) {
#   6:         v = v + 2 * i + 1;
#   7:         i = i + 1;
#   8:     }
#   9:     res = i;                       <- bug: should be res = i - 1
#  10:     assert(res * res <= val && (res + 1) * (res + 1) > val);
#  11:     return res;
#  12: }
#  13: int main(int val) { assume(val > 0); return squareroot(val); }
SQUAREROOT = (
    "int squareroot(int val) {\n"
    "    int i = 1;\n"
    "    int v = 0;\n"
    "    int res = 0;\n"
    "    while (v < val) {\n"
    "        v = v + 2 * i + 1;\n"
    "        i = i + 1;\n"
    "    }\n"
    "    res = i;\n"
    "    assert(res * res <= val && (res + 1) * (res + 1) > val);\n"
    "    return res;\n"
    "}\n"
    "int main(int val) { assume(val > 0); return squareroot(val); }\n"
)


@pytest.fixture(scope="module")
def motivating_program():
    return parse_program(MOTIVATING, name="motivating")


@pytest.fixture(scope="module")
def squareroot_program():
    return parse_program(SQUAREROOT, name="squareroot")


class TestMotivatingExample:
    def test_localization_finds_both_fix_locations(self, motivating_program):
        localizer = BugAssistLocalizer(motivating_program)
        report = localizer.localize_test([1], Specification.assertion())
        # The paper reports two candidate locations: the constant assignment in
        # the else branch and the branch condition itself.
        assert report.contains_line(6)
        assert report.contains_line(3)
        # The then-branch assignment (line 4) is never executed on this input
        # and must not be blamed (compare the paper's Figure 2 discussion).
        assert not report.contains_line(4)

    def test_first_candidate_is_a_singleton_comss(self, motivating_program):
        report = BugAssistLocalizer(motivating_program).localize_test(
            [1], Specification.assertion()
        )
        assert len(report.candidates[0].groups) == 1

    def test_localization_is_finer_than_the_backward_slice(self, motivating_program):
        # The backward slice contains lines 3, 6 and 8 together; BugAssist
        # reports lines 3 and 6 as *separate* candidates (paper Section 2).
        report = BugAssistLocalizer(motivating_program).localize_test(
            [1], Specification.assertion()
        )
        singleton_lines = {
            candidate.lines[0]
            for candidate in report.candidates
            if len(candidate.lines) == 1
        }
        assert {3, 6} <= singleton_lines

    def test_report_metrics(self, motivating_program):
        report = BugAssistLocalizer(motivating_program).localize_test(
            [1], Specification.assertion()
        )
        assert report.maxsat_calls >= 2
        assert report.trace_variables > 0
        assert report.trace_clauses > 0
        assert 0 < report.size_reduction_percent(12) < 100
        assert "potential bug" in report.summary()

    def test_strategies_agree(self, motivating_program):
        reports = {}
        for strategy in ("hitting-set", "msu3", "linear"):
            localizer = BugAssistLocalizer(motivating_program, strategy=strategy)
            reports[strategy] = localizer.localize_test([1], Specification.assertion())
        lines = {strategy: set(report.lines) for strategy, report in reports.items()}
        assert lines["hitting-set"] == lines["msu3"] == lines["linear"]

    def test_hard_lines_are_never_reported(self, motivating_program):
        localizer = BugAssistLocalizer(motivating_program, hard_lines=[6])
        report = localizer.localize_test([1], Specification.assertion())
        assert not report.contains_line(6)
        assert report.contains_line(3)

    def test_session_localizes_from_bmc_counterexample(self, motivating_program):
        # No failing test given: the bounded model checker finds one, and
        # the session localizes it (the modern form of the old
        # ``BugAssistPipeline.localize()`` no-test flow).
        counterexample = BoundedModelChecker(
            motivating_program, unwind=16
        ).find_counterexample()
        assert counterexample is not None
        with LocalizationSession(motivating_program) as session:
            report = session.localize(
                counterexample.as_test(),
                Specification.assertion(),
                nondet_values=counterexample.nondet_values,
            )
        assert report.contains_line(6) or report.contains_line(3)

    def test_pipeline_shim_is_deprecated_but_functional(self, motivating_program):
        # The shim's DeprecationWarning is pinned here — and only here — so
        # the compatibility surface stays covered without leaking warnings
        # into the rest of the run.
        with pytest.warns(DeprecationWarning, match="BugAssistPipeline is deprecated"):
            pipeline = BugAssistPipeline(motivating_program)
        report = pipeline.localize()  # no failing test given: BMC finds one
        assert report.contains_line(6) or report.contains_line(3)


class TestRanking:
    def test_ranking_over_multiple_failing_tests(self):
        # A program whose bug (wrong comparison constant) fails for several
        # inputs; every failing run should blame the constant line.
        source = (
            "int classify(int x) {\n"
            "    int big = 0;\n"
            "    if (x > 7) {\n"  # bug: spec wants threshold 10
            "        big = 1;\n"
            "    }\n"
            "    return big;\n"
            "}\n"
            "int main(int x) { return classify(x); }\n"
        )
        program = parse_program(source, name="classify")
        interpreter = Interpreter(program)
        failing = []
        for x in range(0, 16):
            expected = 1 if x > 10 else 0
            outcome = interpreter.run([x])
            if outcome.return_value != expected:
                failing.append(([x], Specification.return_value(expected)))
        assert failing  # inputs 8, 9, 10 fail
        localizer = BugAssistLocalizer(program)
        ranked = rank_locations(localizer, failing, program_name="classify")
        assert len(ranked.runs) == len(failing)
        top_line, top_count = ranked.ranked_lines[0]
        assert top_line in (3, 4)
        assert top_count == len(failing)
        assert ranked.detection_count({3}) == len(failing)
        assert 0 < ranked.size_reduction_percent(8) <= 100


class TestRepair:
    def test_off_by_one_repair_on_motivating_example(self, motivating_program):
        repairer = OffByOneRepairer(motivating_program)
        failing = [1]
        regressions = [
            ([0], Specification.return_value(30)),
            ([2], Specification.return_value(30)),
        ]
        result = repairer.repair(
            failing, Specification.assertion(), regression_tests=regressions
        )
        assert result.success
        assert result.kind == "constant"
        # Changing the constant on the branch condition (line 3) or on the
        # else-branch assignment (line 6) both eliminate the failure.
        assert result.line in (3, 6)
        patched_program = result.patched_program
        patched = Interpreter(patched_program)
        assert not patched.run([1]).assertion_failed
        assert patched.run([0]).return_value == 30
        assert patched.run([2]).return_value == 30
        assert "replace" in result.describe()
        assert "index" in result.patched_source()

    def test_repair_validated_by_bmc(self, motivating_program):
        repairer = OffByOneRepairer(motivating_program, validator="bmc", bmc_unwind=4)
        result = repairer.repair([1], Specification.assertion())
        assert result.success
        assert result.line in (3, 6)
        # The patched program has no assertion-violating input at all.
        from repro.bmc import BoundedModelChecker

        assert BoundedModelChecker(result.patched_program, unwind=4).holds()

    def test_operator_repair(self):
        source = (
            "int main(int x) {\n"
            "    int ok = 0;\n"
            "    if (x <= 10) {\n"  # bug: should be x < 10
            "        ok = 1;\n"
            "    }\n"
            "    assert(x != 10 || ok == 0);\n"
            "    return ok;\n"
            "}\n"
        )
        program = parse_program(source, name="operator-bug")
        repairer = OffByOneRepairer(program, try_operators=True, validator="bmc", bmc_unwind=2)
        result = repairer.repair([10], Specification.assertion())
        assert result.success

    def test_repair_failure_reported(self):
        # The regression tests pin the intended behaviour (y == x + 2), so no
        # +/-1 constant tweak can both fix the failing test and keep them
        # passing: Algorithm 2 must report that no off-by-one repair exists.
        source = (
            "int main(int x) {\n"
            "    int y = x + 2;\n"
            "    assert(y != 9);\n"
            "    return y;\n"
            "}\n"
        )
        program = parse_program(source, name="unfixable")
        repairer = OffByOneRepairer(program, validator="tests")
        regressions = [
            ([0], Specification.return_value(2)),
            ([1], Specification.return_value(3)),
        ]
        result = repairer.repair(
            [7], Specification.assertion(), regression_tests=regressions
        )
        assert not result.success
        assert result.attempts >= 2
        assert "no off-by-one" in result.describe()


class TestLoopIterationLocalization:
    def test_squareroot_example(self, squareroot_program):
        # Concrete failure: val = 50 gives res = 8 instead of 7.
        result = Interpreter(squareroot_program).run([50])
        assert result.assertion_failed

        localizer = LoopIterationLocalizer(squareroot_program)
        report = localizer.localize([50], Specification.assertion())
        # The trace runs the loop body 7 times; the guard is evaluated 8 times.
        assert report.eta == 8
        # The post-loop assignment (line 9) is reported, as in the paper.
        assert 9 in report.lines
        # Loop statements are reported with iteration information.
        loop_lines = set(report.iteration_candidates)
        assert loop_lines & {5, 6, 7}
        for line in loop_lines:
            iterations = report.iteration_candidates[line]
            assert all(1 <= iteration <= report.eta for iteration in iterations)
            assert report.first_fixable_iteration(line) == min(iterations)
            assert report.reported_iteration(line) in iterations

    def test_plain_localization_also_reports_fix_line(self, squareroot_program):
        report = BugAssistLocalizer(squareroot_program).localize_test(
            [50], Specification.assertion()
        )
        assert report.contains_line(9)
